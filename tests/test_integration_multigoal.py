"""Integration tests: three goal classes, empty controllers, and the
variance objective in the closed loop."""

from dataclasses import replace

from repro.cluster.cluster import Cluster
from repro.core.controller import GoalOrientedController
from repro.experiments.runner import Simulation, default_workload
from repro.workload.generator import WorkloadGenerator
from repro.workload.presets import uniform_multiclass


def test_three_goal_classes_all_progress(fast_config):
    workload = uniform_multiclass(
        fast_config, goals_ms=[4.0, 8.0, 16.0],
        arrival_rate_per_node=0.012,
    )
    sim = Simulation(
        config=fast_config, workload=workload, seed=9,
        warmup_ms=6_000.0,
    )
    sim.run(intervals=30)
    for class_id in (1, 2, 3):
        series = sim.controller.series[class_id]
        assert len(series.observed_rt.values) > 10
    # The tighter the goal, the more memory ends up dedicated
    # (monotone in expectation; assert the extremes).
    tail = 8

    def mean_dedicated(class_id):
        values = sim.controller.series[class_id].dedicated_bytes.values
        return sum(values[-tail:]) / tail

    assert mean_dedicated(1) > mean_dedicated(3)


def test_total_memory_invariant_with_three_classes(fast_config):
    workload = uniform_multiclass(
        fast_config, goals_ms=[4.0, 8.0, 16.0],
        arrival_rate_per_node=0.012,
    )
    sim = Simulation(
        config=fast_config, workload=workload, seed=9,
        warmup_ms=6_000.0,
    )
    for _ in range(15):
        sim.run(intervals=1)
        for node in sim.cluster.nodes:
            assert (
                node.buffers.total_dedicated_bytes()
                + node.buffers.no_goal_bytes()
                == fast_config.node.buffer_bytes
            )


def test_controller_without_goal_classes(fast_config, fast_workload):
    """A goals-free controller is a pure monitor: it must tick along
    without coordinators and without crashing."""
    cluster = Cluster(fast_config, seed=0)
    controller = GoalOrientedController(cluster, goals={})
    generator = WorkloadGenerator(
        cluster, fast_workload, sink=controller
    )
    generator.start()
    controller.start()
    cluster.env.run(until=4 * fast_config.observation_interval_ms + 1)
    assert controller.interval_index == 4
    assert controller.series == {}


def test_variance_objective_closed_loop_asymmetric(fast_config):
    """The §8 objective in the loop with per-node asymmetric arrivals."""
    workload = default_workload(fast_config, goal_ms=6.0)
    workload = replace(
        workload,
        classes=[
            replace(c, node_rates=(0.03, 0.01, 0.01))
            if c.class_id == 1 else c
            for c in workload.classes
        ],
    )
    cluster = Cluster(fast_config, seed=4)
    controller = GoalOrientedController(cluster, goals={1: 6.0})
    controller.coordinators[1].objective = "variance"
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=6_000.0)
    controller.start()
    cluster.env.run(until=cluster.env.now + 25 * fast_config.observation_interval_ms + 1)
    series = controller.series[1]
    # The loop ran, observed, and allocated under the variance LP.
    assert len(series.observed_rt.values) > 10
    assert max(series.dedicated_bytes.values) > 0
    assert controller.coordinators[1].lp_solves >= 1
