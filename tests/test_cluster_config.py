"""Unit tests for the system configuration and device parameter math."""

import pytest

from repro.cluster.config import (
    CpuParameters,
    DiskParameters,
    NetworkParameters,
    SystemConfig,
)


def test_defaults_match_paper_environment():
    """§7.1: 3 nodes, 100 MIPS, 100 Mbit/s, 2 MB cache, 2000 x 4 KB pages."""
    config = SystemConfig()
    assert config.num_nodes == 3
    assert config.cpu.mips == 100.0
    assert config.network.bandwidth_mbit_per_s == 100.0
    assert config.node.buffer_bytes == 2 * 1024 * 1024
    assert config.num_pages == 2000
    assert config.page_size == 4096
    assert config.observation_interval_ms == 5000.0
    assert config.placement == "round_robin"


def test_buffer_pages_per_node():
    config = SystemConfig()
    assert config.buffer_pages_per_node == 512


def test_total_buffer_bytes():
    config = SystemConfig()
    assert config.total_buffer_bytes == 3 * 2 * 1024 * 1024


def test_cpu_service_time():
    cpu = CpuParameters(mips=100.0)
    # 100 MIPS = 100_000 instructions per ms.
    assert cpu.service_ms(100_000) == pytest.approx(1.0)
    assert cpu.service_ms(0) == 0.0


def test_cpu_negative_instructions_rejected():
    with pytest.raises(ValueError):
        CpuParameters().service_ms(-1)


def test_disk_access_time_components():
    disk = DiskParameters(
        avg_seek_ms=4.0, avg_rotational_ms=2.0, transfer_mb_per_s=20.0
    )
    # 4 KB at 20 MB/s = 0.2048 ms transfer.
    assert disk.access_ms(4096) == pytest.approx(6.2048, rel=1e-3)


def test_disk_negative_bytes_rejected():
    with pytest.raises(ValueError):
        DiskParameters().access_ms(-1)


def test_network_transfer_time():
    net = NetworkParameters(bandwidth_mbit_per_s=100.0, latency_ms=0.05)
    # 4096 bytes = 32768 bits at 100 bits/us = 0.32768 ms + latency.
    assert net.transfer_ms(4096) == pytest.approx(0.37768, rel=1e-4)


def test_network_zero_bytes_is_latency_only():
    net = NetworkParameters(latency_ms=0.05)
    assert net.transfer_ms(0) == pytest.approx(0.05)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_nodes": 0},
        {"num_pages": 0},
        {"page_size": 0},
        {"placement": "teleport"},
        {"observation_interval_ms": 0.0},
    ],
)
def test_invalid_config_rejected(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_cost_ordering_local_remote_disk():
    """The storage hierarchy must be priced local < remote < disk."""
    config = SystemConfig()
    remote = config.network.transfer_ms(config.page_size)
    disk = config.disk.access_ms(config.page_size)
    local = config.cpu.service_ms(config.cpu.instructions_buffer_lookup)
    assert local < remote < disk
