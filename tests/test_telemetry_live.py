"""The live observability service: bus, wire formats, catalog, server.

Covers the ISSUE-10 contract: bounded-queue drop accounting under a
slow subscriber, SSE framing round-trip, the run-catalog scan over a
fixture tree, the HTTP endpoints in both replay and live mode, and —
the invariant everything hangs on — bit-identity of a run with live
streaming against one without.
"""

from __future__ import annotations

import http.client
import json
import os
import threading

import pytest

from repro.telemetry import live as live_mod
from repro.telemetry.catalog import find_run, run_detail, scan_runs
from repro.telemetry.live import (
    SnapshotSampler,
    Subscription,
    TelemetryBus,
    parse_sse,
    sse_format,
)
from repro.telemetry.pipeline import Telemetry
from repro.telemetry.server import LiveService

from tests.golden_trace import (
    CONFIG,
    GOAL_RANGE,
    GOLDEN_PATH,
    INTERVALS,
    SEED,
    WARMUP_MS,
)


@pytest.fixture(autouse=True)
def _no_leftover_live_hook():
    """Every test starts and ends with the live hook disarmed."""
    live_mod.uninstall()
    yield
    live_mod.uninstall()


# -- bus and subscription ----------------------------------------------


def test_bus_fanout_delivers_to_every_subscriber():
    bus = TelemetryBus()
    a, b = bus.subscribe(), bus.subscribe()
    for i in range(5):
        bus.publish({"i": i})
    assert [a.get(0)["i"] for _ in range(5)] == list(range(5))
    assert [b.get(0)["i"] for _ in range(5)] == list(range(5))
    assert bus.published == 5
    assert a.delivered == b.delivered == 5


def test_slow_subscriber_drops_oldest_with_accounting():
    bus = TelemetryBus()
    slow = bus.subscribe(maxlen=4)
    fast = bus.subscribe(maxlen=100)
    for i in range(10):
        bus.publish({"i": i})
    # The slow queue kept only the newest 4; the overflow is counted.
    assert slow.dropped == 6
    assert [slow.get(0)["i"] for _ in range(4)] == [6, 7, 8, 9]
    assert fast.dropped == 0
    assert bus.total_dropped() == 6
    # Drops never back-pressured the publisher.
    assert bus.published == 10


def test_slow_subscriber_does_not_block_publish_thread():
    bus = TelemetryBus()
    sub = bus.subscribe(maxlen=1)
    done = threading.Event()

    def pump():
        for i in range(1000):
            bus.publish({"i": i})
        done.set()

    t = threading.Thread(target=pump)
    t.start()
    t.join(timeout=5.0)
    assert done.is_set(), "publish blocked on a full subscriber queue"
    assert sub.dropped == 999


def test_subscription_get_times_out_and_close_wakes_reader():
    sub = Subscription(maxlen=2)
    assert sub.get(timeout=0.01) is None
    got = []
    t = threading.Thread(target=lambda: got.append(sub.get(timeout=5.0)))
    t.start()
    sub.close()
    t.join(timeout=5.0)
    assert got == [None]
    assert sub.closed


def test_bus_close_closes_subscribers_and_rejects_publishes():
    bus = TelemetryBus()
    sub = bus.subscribe()
    bus.close()
    assert sub.closed
    bus.publish({"i": 1})
    assert bus.published == 0
    assert bus.subscribe().closed


def test_subscription_rejects_zero_bound():
    with pytest.raises(ValueError):
        Subscription(maxlen=0)


# -- SSE wire format ---------------------------------------------------


def test_sse_round_trip():
    frames = [
        ("trace", {"record": {"kind": "decision", "t": 1.5}}),
        ("metrics", {"t": 2000.0, "samples": [{"name": "x", "value": 3}]}),
        ("end", {"records": 2}),
    ]
    text = "".join(sse_format(event, data) for event, data in frames)
    assert parse_sse(text) == frames


def test_parse_sse_skips_keepalives_and_truncated_tail():
    text = (
        ": keepalive\n\n"
        + sse_format("trace", {"a": 1})
        + 'event: trace\ndata: {"trunc'
    )
    assert parse_sse(text) == [("trace", {"a": 1})]


def test_parse_sse_joins_multiline_data():
    text = 'event: blob\ndata: {"a":\ndata: 1}\n\n'
    assert parse_sse(text) == [("blob", {"a": 1})]


# -- sampler -----------------------------------------------------------


def test_sampler_publishes_trace_and_paced_metric_deltas():
    tel = Telemetry()
    bus = TelemetryBus()
    counter = tel.registry.counter("repro_test_total")
    tel.trace.listener = SnapshotSampler(tel, bus, interval_ms=1000.0)
    sub = bus.subscribe()
    counter.value = 1
    tel.emit("tick", 0.0)        # crosses t=0 -> snapshot
    tel.emit("tick", 500.0)      # within the interval -> no snapshot
    counter.value = 2
    tel.emit("tick", 1500.0)     # crosses -> snapshot with the delta
    tel.emit("tick", 1600.0)     # within -> nothing
    types = []
    while (record := sub.get(0)) is not None:
        types.append(record["type"])
        if record["type"] == "metrics":
            assert record["samples"][0]["name"] == "repro_test_total"
    assert types == ["trace", "metrics", "trace", "trace", "metrics",
                     "trace"]


def test_sampler_metrics_frames_only_carry_changes():
    tel = Telemetry()
    bus = TelemetryBus()
    changing = tel.registry.counter("repro_changing_total")
    tel.registry.counter("repro_static_total").value = 7
    tel.trace.listener = SnapshotSampler(tel, bus, interval_ms=100.0)
    sub = bus.subscribe()
    changing.value = 1
    tel.emit("tick", 0.0)
    changing.value = 2
    tel.emit("tick", 200.0)
    frames = []
    while (record := sub.get(0)) is not None:
        if record["type"] == "metrics":
            frames.append([s["name"] for s in record["samples"]])
    assert frames[0] == ["repro_changing_total", "repro_static_total"]
    assert frames[1] == ["repro_changing_total"]


# -- bit-identity with live streaming ----------------------------------


def _golden_run(recorder):
    from repro.experiments.figure2 import run_figure2

    return run_figure2(
        seed=SEED, intervals=INTERVALS, config=CONFIG,
        goal_range=GOAL_RANGE, warmup_ms=WARMUP_MS, recorder=recorder,
    )


def test_live_streaming_run_matches_golden_trace():
    """A run streamed to a live service is bit-identical to the golden
    workload trace recorded with no telemetry at all."""
    from repro.workload.trace import TraceRecorder

    service = LiveService.live(port=0).start()
    drained = []
    sub = service.bus.subscribe()

    def drain():
        while (record := sub.get(timeout=5.0)) is not None:
            drained.append(record)

    reader = threading.Thread(target=drain, daemon=True)
    reader.start()
    try:
        recorder = TraceRecorder()
        data = _golden_run(recorder)
    finally:
        service.stop()
    reader.join(timeout=5.0)
    golden = TraceRecorder.load(GOLDEN_PATH).records
    assert recorder.records == golden
    # And the run really streamed while it ran.
    assert any(r["type"] == "trace" for r in drained)
    assert any(r["type"] == "metrics" for r in drained)
    assert data.quantiles is not None


def test_live_port_run_matches_plain_run_outputs():
    """figure2 with the live hook armed produces the same series as
    one without (the --live-port CLI contract)."""
    plain = _golden_run(None)
    service = LiveService.live(port=0).start()
    try:
        streamed = _golden_run(None)
    finally:
        service.stop()
    assert streamed.observed_rt == plain.observed_rt
    assert streamed.goal == plain.goal
    assert streamed.dedicated_bytes == plain.dedicated_bytes
    assert streamed.satisfied == plain.satisfied


# -- run catalog -------------------------------------------------------


def _write_run(path, records, meta=None, manifest=None):
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, "trace.jsonl"), "w") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    if meta is not None:
        with open(os.path.join(path, "metrics.json"), "w") as fh:
            json.dump({"meta": meta, "metrics": []}, fh)
    if manifest is not None:
        with open(os.path.join(path, "points.json"), "w") as fh:
            json.dump(manifest, fh)


def _fixture_tree(root):
    """Two runs: a single export and a merged sweep with one point."""
    single = os.path.join(root, "single")
    _write_run(
        single,
        [{"kind": "interval", "t": 1000.0},
         {"kind": "decision", "t": 1500.0, "class_id": 1}],
        meta={"seed": 1, "num_nodes": 3},
    )
    sweep = os.path.join(root, "sweep")
    _write_run(
        sweep,
        [{"kind": "interval", "t": 500.0, "point": "g1"}],
        meta={"seed": 2, "num_nodes": 3},
        manifest=[
            {"label": "g1", "dir": "g1", "records": 1},
            {"label": "g2", "dir": "g2", "skipped": "missing"},
        ],
    )
    _write_run(os.path.join(sweep, "g1"),
               [{"kind": "interval", "t": 500.0}])
    return single, sweep


def test_catalog_scan_fixture_tree(tmp_path):
    root = str(tmp_path)
    _fixture_tree(root)
    runs = scan_runs(root)
    # The per-point g1 directory is folded into its sweep parent.
    assert [info.name for info in runs] == ["single", "sweep"]
    single, sweep = runs
    assert single.records == 2
    assert single.t_min == 1000.0 and single.t_max == 1500.0
    assert single.meta == {"seed": 1, "num_nodes": 3}
    assert sweep.points == ["g1"]
    assert sweep.skipped_points == ["g2"]
    assert len({info.run_id for info in runs}) == 2


def test_catalog_ids_are_stable_across_scans(tmp_path):
    root = str(tmp_path)
    _fixture_tree(root)
    first = {info.name: info.run_id for info in scan_runs(root)}
    second = {info.name: info.run_id for info in scan_runs(root)}
    assert first == second


def test_catalog_find_and_detail(tmp_path):
    root = str(tmp_path)
    _fixture_tree(root)
    runs = scan_runs(root)
    single = next(info for info in runs if info.name == "single")
    assert find_run(root, single.run_id).path == single.path
    assert find_run(root, "nonexistent") is None
    assert find_run(root, "latest") is not None
    detail = run_detail(single)
    assert detail["kinds"] == {"decision": 1, "interval": 1}


def test_catalog_tolerates_torn_trace(tmp_path):
    run = tmp_path / "torn"
    run.mkdir()
    (run / "trace.jsonl").write_text(
        json.dumps({"kind": "interval", "t": 1.0}) + "\n"
        + '{"kind": "interval", "t": 2.0'  # killed mid-write
    )
    (info,) = scan_runs(str(tmp_path))
    assert info.records == 1


# -- HTTP service ------------------------------------------------------


def _get(port, path, timeout=10):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    conn.request("GET", path)
    resp = conn.getresponse()
    body = resp.read()
    conn.close()
    return resp.status, body


def test_replay_service_serves_all_endpoints(tmp_path):
    root = str(tmp_path)
    _fixture_tree(root)
    service = LiveService.replay(root, port=0).start()
    try:
        status, body = _get(service.port, "/")
        assert status == 200 and b"<!DOCTYPE html>" in body
        status, body = _get(service.port, "/api/runs")
        doc = json.loads(body)
        assert status == 200 and len(doc["runs"]) == 2
        assert doc["live"] is False
        run_id = doc["runs"][0]["id"]
        status, body = _get(service.port, f"/api/runs/{run_id}")
        assert status == 200 and "kinds" in json.loads(body)
        status, body = _get(service.port, "/api/runs/bogus")
        assert status == 404
        status, body = _get(service.port, "/nope")
        assert status == 404
        status, body = _get(
            service.port, f"/events?replay={run_id}&speed=0"
        )
        frames = parse_sse(body.decode())
        assert frames[0][0] == "run_start"
        assert frames[-1][0] == "end"
        assert [e for e, _ in frames].count("trace") == 2
    finally:
        service.stop()


def test_replay_service_metrics_concatenates_recorded_scrapes(tmp_path):
    run = tmp_path / "run"
    run.mkdir()
    (run / "trace.jsonl").write_text("")
    (run / "metrics.prom").write_text(
        "# TYPE repro_x counter\nrepro_x 1\n"
    )
    service = LiveService.replay(str(tmp_path), port=0).start()
    try:
        status, body = _get(service.port, "/metrics")
        assert status == 200 and b"repro_x 1" in body
    finally:
        service.stop()


def test_live_service_installs_and_uninstalls_hook():
    service = LiveService.live(port=0).start()
    assert live_mod.installed() is service.bus
    service.stop()
    assert live_mod.installed() is None
