"""Property-based tests for the measure-point window invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gauss import IndependenceTracker
from repro.core.hyperplane import fit_hyperplane
from repro.core.measure import MeasureWindow

observations = st.lists(
    st.tuples(
        st.lists(
            st.integers(min_value=0, max_value=8),  # alloc in pages
            min_size=3, max_size=3,
        ),
        st.floats(min_value=0.1, max_value=100.0),   # rt_goal
        st.floats(min_value=0.1, max_value=100.0),   # rt_nogoal
    ),
    min_size=1,
    max_size=40,
)


@given(observations)
@settings(max_examples=100, deadline=None)
def test_property_selected_differences_always_independent(history):
    """Phase (b) invariant: the difference vectors of the selected
    points w.r.t. the newest one are always linearly independent."""
    window = MeasureWindow(num_nodes=3)
    for i, (alloc, rt_goal, rt_nogoal) in enumerate(history):
        window.observe(
            np.array(alloc, dtype=float) * 4096.0,
            rt_goal, rt_nogoal, time=float(i),
        )
        selected = window.selected_points()
        assert 1 <= len(selected) <= 4
        newest = selected[0]
        tracker = IndependenceTracker(3)
        for point in selected[1:]:
            diff = point.allocation - newest.allocation
            assert tracker.add(diff), (
                "selected point with dependent difference vector"
            )


@given(observations)
@settings(max_examples=60, deadline=None)
def test_property_ready_windows_always_fit(history):
    """Whenever the window claims readiness, the plane fit succeeds."""
    window = MeasureWindow(num_nodes=3)
    for i, (alloc, rt_goal, rt_nogoal) in enumerate(history):
        window.observe(
            np.array(alloc, dtype=float) * 4096.0,
            rt_goal, rt_nogoal, time=float(i),
        )
        if window.ready():
            goal_plane, nogoal_plane = window.fit_planes()
            # The planes interpolate the selected points exactly.
            for point in window.selected_points():
                assert abs(
                    goal_plane.predict(point.allocation) - point.rt_goal
                ) < 1e-6 * max(1.0, abs(point.rt_goal)) + 1e-6


@given(observations)
@settings(max_examples=60, deadline=None)
def test_property_newest_reflects_last_observation(history):
    window = MeasureWindow(num_nodes=3, smoothing=1.0)
    for i, (alloc, rt_goal, rt_nogoal) in enumerate(history):
        window.observe(
            np.array(alloc, dtype=float) * 4096.0,
            rt_goal, rt_nogoal, time=float(i),
        )
        assert window.newest.time == float(i)
        # With smoothing=1.0 the newest point's RT equals the last
        # observation at that allocation.
        assert window.newest.rt_goal == rt_goal
