"""Unit tests for the baseline partitioning strategies."""

import numpy as np
import pytest

from repro.baselines import (
    COORDINATOR_TYPES,
    ClassFencingCoordinator,
    DynamicTuningCoordinator,
    FragmentFencingCoordinator,
    StaticPartitioningController,
    make_controller,
)
from repro.cluster.cluster import Cluster
from repro.core.agent import AgentReport
from repro.core.coordinator import Coordinator

MB = 1024 * 1024


def make(coordinator_cls, goal_ms=10.0, **kwargs):
    return coordinator_cls(
        class_id=1,
        node_sizes=[2 * MB] * 3,
        goal_ms=goal_ms,
        page_size=4096,
        **kwargs,
    )


def feed(coordinator, rts, rate=0.01):
    for node_id, rt in enumerate(rts):
        coordinator.receive_goal_report(
            AgentReport(
                node_id=node_id, class_id=1, arrivals=50, completions=50,
                mean_response_ms=rt, arrival_rate=rate, time=0.0,
            )
        )


# -- fragment fencing ---------------------------------------------------


def test_fragment_fencing_seeds_on_first_violation():
    coordinator = make(FragmentFencingCoordinator)
    feed(coordinator, [20.0] * 3)
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.mechanism == "fragment-fencing"
    assert np.all(decision.new_allocation > 0)


def test_fragment_fencing_scales_by_rt_ratio():
    coordinator = make(FragmentFencingCoordinator, goal_ms=10.0)
    coordinator.receive_granted([MB, MB, MB])
    feed(coordinator, [20.0] * 3)  # 2x too slow -> double the buffer
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.new_allocation.sum() == pytest.approx(
        6 * MB, rel=0.02
    )


def test_fragment_fencing_clamps_extreme_ratios():
    coordinator = make(FragmentFencingCoordinator, goal_ms=10.0)
    coordinator.receive_granted([MB, MB, MB])
    feed(coordinator, [1000.0] * 3)  # 100x too slow, clamped to 3x
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.new_allocation.sum() <= 3 * 3 * MB + 4096


def test_fragment_fencing_distributes_by_arrival_rate():
    coordinator = make(FragmentFencingCoordinator, goal_ms=10.0)
    coordinator.receive_granted([MB, MB, MB])
    coordinator.receive_goal_report(AgentReport(
        node_id=0, class_id=1, arrivals=90, completions=90,
        mean_response_ms=20.0, arrival_rate=0.03, time=0.0,
    ))
    coordinator.receive_goal_report(AgentReport(
        node_id=1, class_id=1, arrivals=30, completions=30,
        mean_response_ms=20.0, arrival_rate=0.01, time=0.0,
    ))
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.new_allocation[0] > decision.new_allocation[1]


# -- class fencing ------------------------------------------------------


def test_class_fencing_probes_until_two_hit_points():
    coordinator = make(ClassFencingCoordinator)
    feed(coordinator, [20.0] * 3)
    coordinator.receive_hit_info(0, hits=50, misses=50)
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.mechanism == "class-fencing"
    assert np.all(decision.new_allocation >= 0)


def test_class_fencing_extrapolates_hit_rate():
    coordinator = make(ClassFencingCoordinator, goal_ms=10.0)
    # Two prior measurements: 1 MB -> 50 % hits, 2 MB -> 60 % hits.
    coordinator._hit_points = [(1 * MB, 0.5), (2 * MB, 0.6)]
    coordinator.receive_granted([2 * MB / 3] * 3)
    feed(coordinator, [20.0] * 3)
    coordinator.receive_hit_info(0, hits=60, misses=40)
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    # Needs miss rate 0.4 * (10/20) = 0.2 -> hit rate 0.8 -> slope
    # 0.1/MB from 0.6 at 2 MB -> 4 MB total.
    assert decision.new_allocation.sum() == pytest.approx(
        4 * MB, rel=0.05
    )


def test_class_fencing_updates_same_buffer_measurement():
    coordinator = make(ClassFencingCoordinator)
    coordinator.receive_granted([MB, 0, 0])
    coordinator.receive_hit_info(0, hits=50, misses=50)
    coordinator._observe_hit_rate()
    coordinator.receive_hit_info(0, hits=80, misses=20)
    coordinator._observe_hit_rate()
    assert len(coordinator._hit_points) == 1
    assert coordinator._hit_points[0][1] == pytest.approx(0.8)


# -- dynamic tuning -----------------------------------------------------


def test_dynamic_tuning_grows_on_violation():
    coordinator = make(DynamicTuningCoordinator, goal_ms=10.0)
    feed(coordinator, [20.0] * 3)
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.mechanism == "dynamic-tuning"
    grown = decision.new_allocation - coordinator.current_allocation
    assert np.count_nonzero(grown) == 1  # one greedy step
    assert grown.sum() > 0


def test_dynamic_tuning_releases_when_overperforming():
    coordinator = make(DynamicTuningCoordinator, goal_ms=10.0)
    coordinator.receive_granted([MB, MB, MB])
    coordinator.tolerance.reset()
    feed(coordinator, [2.0] * 3)  # index 0.2 < release threshold
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.new_allocation.sum() < 3 * MB


def test_dynamic_tuning_grows_busiest_node_first():
    coordinator = make(DynamicTuningCoordinator, goal_ms=10.0)
    coordinator.receive_goal_report(AgentReport(
        node_id=2, class_id=1, arrivals=90, completions=90,
        mean_response_ms=20.0, arrival_rate=0.03, time=0.0,
    ))
    coordinator.receive_goal_report(AgentReport(
        node_id=0, class_id=1, arrivals=10, completions=10,
        mean_response_ms=20.0, arrival_rate=0.001, time=0.0,
    ))
    decision = coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    assert decision.new_allocation[2] > 0
    assert decision.new_allocation[0] == 0


# -- wiring -------------------------------------------------------------


def test_make_controller_swaps_coordinators(fast_config):
    cluster = Cluster(fast_config, seed=0)
    controller = make_controller(
        "fragment-fencing", cluster, goals={1: 5.0}
    )
    assert isinstance(
        controller.coordinators[1], FragmentFencingCoordinator
    )


def test_make_controller_default_is_lp(fast_config):
    cluster = Cluster(fast_config, seed=0)
    controller = make_controller("goal-oriented", cluster, goals={1: 5.0})
    assert type(controller.coordinators[1]) is Coordinator


def test_make_controller_unknown_name(fast_config):
    cluster = Cluster(fast_config, seed=0)
    with pytest.raises(ValueError):
        make_controller("magic", cluster, goals={1: 5.0})


def test_registry_contains_all_strategies():
    assert set(COORDINATOR_TYPES) == {
        "goal-oriented", "fragment-fencing", "class-fencing",
        "dynamic-tuning",
    }


def test_static_controller_applies_fixed_allocation(
    fast_config, fast_workload
):
    from repro.workload.generator import WorkloadGenerator

    cluster = Cluster(fast_config, seed=0)
    fixed = [16 * 4096] * 3
    controller = StaticPartitioningController(
        cluster, goals={1: 5.0}, allocations={1: fixed}
    )
    generator = WorkloadGenerator(cluster, fast_workload, sink=controller)
    generator.start()
    controller.start()
    cluster.env.run(until=6 * fast_config.observation_interval_ms + 1)
    assert cluster.dedicated_bytes(1) == fixed
    # And it stays fixed.
    cluster.env.run(until=10 * fast_config.observation_interval_ms + 1)
    assert cluster.dedicated_bytes(1) == fixed
