"""Unit tests for message sizes and traffic accounting."""

from repro.cluster.messages import (
    CONTROL_KINDS,
    MessageKind,
    TrafficAccounting,
    message_size,
)


def test_page_ship_size_includes_payload():
    assert message_size(MessageKind.PAGE_SHIP, 4096) == 4096 + 64


def test_control_messages_are_small():
    """§7.5 relies on control messages being tiny relative to pages.

    The one exception is the rare coordinator state transfer on
    migration, which still stays well under a page.
    """
    for kind in CONTROL_KINDS:
        if kind is MessageKind.MIGRATION_STATE:
            assert message_size(kind) <= 4096
        else:
            assert message_size(kind) <= 64


def test_control_kinds_are_exactly_the_control_path():
    assert MessageKind.AGENT_REPORT in CONTROL_KINDS
    assert MessageKind.ALLOCATION in CONTROL_KINDS
    assert MessageKind.ALLOCATION_ACK in CONTROL_KINDS
    assert MessageKind.PAGE_SHIP not in CONTROL_KINDS
    assert MessageKind.DIRECTORY_UPDATE not in CONTROL_KINDS


def test_accounting_totals():
    acc = TrafficAccounting()
    acc.record(MessageKind.PAGE_SHIP, 4160)
    acc.record(MessageKind.PAGE_SHIP, 4160)
    acc.record(MessageKind.AGENT_REPORT, 64)
    assert acc.total_bytes == 8384
    assert acc.control_bytes == 64
    assert acc.messages_by_kind[MessageKind.PAGE_SHIP] == 2


def test_control_fraction():
    acc = TrafficAccounting()
    assert acc.control_fraction == 0.0
    acc.record(MessageKind.PAGE_SHIP, 9936)
    acc.record(MessageKind.ALLOCATION, 64)
    assert acc.control_fraction == 64 / 10000
