"""Unit tests for the strict 2PL lock manager."""

import pytest

from repro.sim.engine import Environment
from repro.txn.locks import DeadlockError, LockManager, LockMode


def run_acquire(env, locks, txn_id, page_id, mode, log, name):
    def proc():
        yield from locks.acquire(txn_id, page_id, mode)
        log.append((name, env.now))

    return env.process(proc())


def test_shared_locks_coexist():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "a")
    run_acquire(env, locks, 2, 7, LockMode.SHARED, log, "b")
    env.run()
    assert [name for name, _ in log] == ["a", "b"]
    assert locks.holds(1, 7) and locks.holds(2, 7)


def test_exclusive_blocks_shared():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.EXCLUSIVE, log, "writer")
    run_acquire(env, locks, 2, 7, LockMode.SHARED, log, "reader")
    env.run(until=10.0)
    assert log == [("writer", 0.0)]
    assert locks.waiting_count(7) == 1
    locks.release_all(1)
    env.run()
    assert ("reader", 10.0) in log


def test_shared_blocks_exclusive():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "reader")
    run_acquire(env, locks, 2, 7, LockMode.EXCLUSIVE, log, "writer")
    env.run(until=1.0)
    assert log == [("reader", 0.0)]
    locks.release_all(1)
    env.run()
    assert len(log) == 2


def test_reacquire_held_lock_is_noop():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "first")
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "second")
    env.run()
    assert len(log) == 2


def test_upgrade_when_sole_holder():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "s")
    run_acquire(env, locks, 1, 7, LockMode.EXCLUSIVE, log, "x")
    env.run()
    assert len(log) == 2
    assert locks.mode_of(1, 7) is LockMode.EXCLUSIVE


def test_fifo_no_starvation_of_writer():
    """A queued writer must not be overtaken by later readers."""
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.SHARED, log, "r1")
    run_acquire(env, locks, 2, 7, LockMode.EXCLUSIVE, log, "w")
    run_acquire(env, locks, 3, 7, LockMode.SHARED, log, "r2")
    env.run(until=1.0)
    assert [name for name, _ in log] == ["r1"]
    locks.release_all(1)
    env.run(until=2.0)
    assert [name for name, _ in log] == ["r1", "w"]
    locks.release_all(2)
    env.run()
    assert [name for name, _ in log] == ["r1", "w", "r2"]


def test_deadlock_detected_not_blocked():
    env = Environment()
    locks = LockManager(env)
    caught = []

    def txn1():
        yield from locks.acquire(1, 10, LockMode.EXCLUSIVE)
        yield env.timeout(1.0)
        yield from locks.acquire(1, 20, LockMode.EXCLUSIVE)

    def txn2():
        yield from locks.acquire(2, 20, LockMode.EXCLUSIVE)
        yield env.timeout(2.0)
        try:
            yield from locks.acquire(2, 10, LockMode.EXCLUSIVE)
        except DeadlockError as exc:
            caught.append(exc.txn_id)
            locks.release_all(2)

    env.process(txn1())
    env.process(txn2())
    env.run()
    assert caught == [2]
    assert locks.deadlocks_detected == 1


def test_three_way_deadlock_detected():
    env = Environment()
    locks = LockManager(env)
    caught = []

    def txn(me, first, second, delay):
        yield from locks.acquire(me, first, LockMode.EXCLUSIVE)
        yield env.timeout(delay)
        try:
            yield from locks.acquire(me, second, LockMode.EXCLUSIVE)
        except DeadlockError:
            caught.append(me)
            locks.release_all(me)

    env.process(txn(1, 10, 20, 1.0))
    env.process(txn(2, 20, 30, 1.0))
    env.process(txn(3, 30, 10, 2.0))
    env.run()
    assert caught == [3]


def test_release_all_wakes_multiple_readers():
    env = Environment()
    locks = LockManager(env)
    log = []
    run_acquire(env, locks, 1, 7, LockMode.EXCLUSIVE, log, "w")
    run_acquire(env, locks, 2, 7, LockMode.SHARED, log, "r1")
    run_acquire(env, locks, 3, 7, LockMode.SHARED, log, "r2")
    env.run(until=1.0)
    locks.release_all(1)
    env.run()
    assert {name for name, _ in log} == {"w", "r1", "r2"}


def test_release_without_locks_is_noop():
    env = Environment()
    locks = LockManager(env)
    locks.release_all(99)  # must not raise
    assert not locks.holds(99, 1)
