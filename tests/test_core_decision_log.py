"""Unit tests for the coordinator decision log."""

import numpy as np

from repro.core.coordinator import Coordinator, DecisionRecord
from tests.test_core_coordinator import feed, make_coordinator


def test_every_evaluate_is_logged():
    coordinator = make_coordinator(goal_ms=10.0)
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    coordinator.evaluate(now=1.0, other_dedicated=[0, 0, 0])
    feed(coordinator, [10.0] * 3, [1.0] * 3, time=2.0)
    coordinator.evaluate(now=2.0, other_dedicated=[0, 0, 0])
    assert len(coordinator.decision_log) == 2
    first, second = coordinator.decision_log
    assert isinstance(first, DecisionRecord)
    assert first.time == 1.0
    assert not first.satisfied
    assert first.mechanism == "warmup"


def test_log_records_allocation_totals():
    coordinator = make_coordinator(goal_ms=10.0)
    feed(coordinator, [20.0] * 3, [1.0] * 3)
    decision = coordinator.evaluate(now=1.0, other_dedicated=[0, 0, 0])
    assert coordinator.decision_log[-1].allocation_total == (
        float(np.sum(decision.new_allocation))
    )


def test_log_is_bounded():
    coordinator = make_coordinator(goal_ms=10.0)
    coordinator.decision_log_limit = 5
    for i in range(12):
        feed(coordinator, [10.0] * 3, [1.0] * 3, time=float(i))
        coordinator.evaluate(now=float(i), other_dedicated=[0, 0, 0])
    assert len(coordinator.decision_log) == 5
    assert coordinator.decision_log[-1].time == 11.0


def test_log_caps_at_512_as_a_ring():
    """The default cap holds, evicting oldest-first without growth."""
    coordinator = make_coordinator(goal_ms=10.0)
    assert coordinator.decision_log_limit == 512
    for i in range(520):
        feed(coordinator, [10.0] * 3, [1.0] * 3, time=float(i))
        coordinator.evaluate(now=float(i), other_dedicated=[0, 0, 0])
    assert len(coordinator.decision_log) == 512
    assert coordinator.decision_log.appended == 520
    assert coordinator.decision_log.evicted == 8
    # Oldest evicted: the surviving window is the newest 512 records.
    assert coordinator.decision_log[0].time == 8.0
    assert coordinator.decision_log[-1].time == 519.0


def test_no_reports_logged_as_satisfied_noop():
    coordinator = make_coordinator()
    coordinator.evaluate(now=0.0, other_dedicated=[0, 0, 0])
    record = coordinator.decision_log[-1]
    assert record.observed_rt is None
    assert record.satisfied
