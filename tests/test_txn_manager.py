"""Integration tests for distributed transactions (2PL + WAL + 2PC)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import NodeParameters, SystemConfig
from repro.cluster.messages import MessageKind
from repro.txn.locks import DeadlockError
from repro.txn.manager import TransactionManager, TxnStatus
from repro.txn.wal import LogRecordKind


@pytest.fixture
def cluster():
    config = SystemConfig(
        num_nodes=3,
        num_pages=60,
        node=NodeParameters(buffer_bytes=16 * 4096),
    )
    return Cluster(config, seed=0)


def drive(cluster, generator):
    result = {}

    def proc():
        result["value"] = yield from generator
    cluster.env.process(proc())
    cluster.env.run()
    return result.get("value")


def test_read_only_transaction_commits_without_2pc(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.read(txn, 5)
        yield from manager.read(txn, 6)
        return (yield from manager.commit(txn))

    assert drive(cluster, work()) is True
    assert txn.status is TxnStatus.COMMITTED
    assert manager.two_phase.commits == 0  # no 2PC needed
    assert manager.locks_held(txn) == []


def test_write_commit_runs_2pc_and_forces_logs(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        # Page 1 is homed at node 1, page 2 at node 2: two participants.
        yield from manager.write(txn, 1, payload="a")
        yield from manager.write(txn, 2, payload="b")
        return (yield from manager.commit(txn))

    assert drive(cluster, work()) is True
    assert manager.two_phase.commits == 1
    # Both participants hold durable COMMIT records.
    assert 1 in manager.logs[1].committed_transactions()
    assert 1 in manager.logs[2].committed_transactions()
    # The updates replay from the durable logs.
    assert manager.logs[1].replay_updates() == {1: "a"}
    assert manager.logs[2].replay_updates() == {2: "b"}


def test_2pc_messages_accounted(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.write(txn, 1, payload="a")
        return (yield from manager.commit(txn))

    drive(cluster, work())
    acc = cluster.network.accounting
    assert acc.messages_by_kind.get(MessageKind.TXN_PREPARE, 0) == 1
    assert acc.messages_by_kind.get(MessageKind.TXN_VOTE, 0) == 1
    assert acc.messages_by_kind.get(MessageKind.TXN_COMMIT, 0) == 1
    assert acc.messages_by_kind.get(MessageKind.TXN_ACK, 0) == 1


def test_no_vote_aborts_globally(cluster):
    manager = TransactionManager(
        cluster, vote_hook=lambda node, txn: node != 1
    )
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.write(txn, 1, payload="a")  # home node 1
        yield from manager.write(txn, 2, payload="b")  # home node 2
        return (yield from manager.commit(txn))

    assert drive(cluster, work()) is False
    assert txn.status is TxnStatus.ABORTED
    assert manager.two_phase.aborts == 1
    # No participant may have a durable COMMIT for the transaction.
    for log in manager.logs.values():
        assert 1 not in log.committed_transactions()
    assert manager.logs[2].replay_updates() == {}


def test_locks_released_after_commit(cluster):
    manager = TransactionManager(cluster)
    txn1 = manager.begin(node_id=0)
    txn2 = manager.begin(node_id=1)
    order = []

    def writer1():
        yield from manager.write(txn1, 3, payload="x")
        order.append("t1 locked")
        yield from manager.commit(txn1)
        order.append("t1 committed")

    def writer2():
        yield cluster.env.timeout(0.01)
        yield from manager.write(txn2, 3, payload="y")
        order.append("t2 locked")
        yield from manager.commit(txn2)

    cluster.env.process(writer1())
    cluster.env.process(writer2())
    cluster.env.run()
    assert order == ["t1 locked", "t1 committed", "t2 locked"]
    assert txn2.status is TxnStatus.COMMITTED


def test_commit_invalidates_remote_copies(cluster):
    manager = TransactionManager(cluster)

    # Cache page 5 on node 1 via a plain read access.
    def reader():
        yield from cluster.access_page(1, 5, 0)

    cluster.env.process(reader())
    cluster.env.run()
    assert 1 in cluster.directory.holders(5)

    txn = manager.begin(node_id=0)

    def writer():
        yield from manager.write(txn, 5, payload="new")
        yield from manager.commit(txn)

    cluster.env.process(writer())
    cluster.env.run()
    # Node 1's stale copy is gone; writer's copy remains.
    assert 1 not in cluster.directory.holders(5)
    assert not cluster.nodes[1].buffers.contains(5)
    acc = cluster.network.accounting
    assert acc.messages_by_kind.get(MessageKind.INVALIDATE, 0) >= 1


def test_deadlock_victim_aborts_and_raises(cluster):
    manager = TransactionManager(cluster)
    txn1 = manager.begin(node_id=0)
    txn2 = manager.begin(node_id=0)
    outcome = {}

    # Pages 3 and 6 are both homed at node 0: one lock manager.
    def worker1():
        yield from manager.write(txn1, 3)
        yield cluster.env.timeout(5.0)
        yield from manager.write(txn1, 6)
        yield from manager.commit(txn1)

    def worker2():
        yield from manager.write(txn2, 6)
        yield cluster.env.timeout(10.0)
        try:
            yield from manager.write(txn2, 3)
        except DeadlockError:
            outcome["victim"] = txn2.txn_id

    cluster.env.process(worker1())
    cluster.env.process(worker2())
    cluster.env.run()
    assert outcome["victim"] == txn2.txn_id
    assert txn2.status is TxnStatus.ABORTED
    assert txn1.status is TxnStatus.COMMITTED


def test_operations_on_finished_transaction_rejected(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.read(txn, 5)
        yield from manager.commit(txn)

    drive(cluster, work())
    with pytest.raises(RuntimeError):
        drive(cluster, manager.read(txn, 6))


def test_abort_logs_and_releases(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.write(txn, 3, payload="x")
        yield from manager.abort(txn)

    drive(cluster, work())
    assert txn.status is TxnStatus.ABORTED
    assert manager.locks_held(txn) == []
    kinds = [r.kind for r in manager.logs[0]._records]
    assert LogRecordKind.ABORT in kinds


def test_remote_lock_requests_cross_network(cluster):
    manager = TransactionManager(cluster)
    txn = manager.begin(node_id=0)

    def work():
        yield from manager.read(txn, 1)  # homed at node 1
        yield from manager.commit(txn)

    drive(cluster, work())
    acc = cluster.network.accounting
    assert acc.messages_by_kind.get(MessageKind.LOCK_REQUEST, 0) >= 1
    assert acc.messages_by_kind.get(MessageKind.LOCK_RELEASE, 0) >= 1


def test_many_concurrent_transactions_all_resolve(cluster):
    manager = TransactionManager(cluster)
    done = []

    def worker(i):
        txn = manager.begin(node_id=i % 3)
        try:
            yield from manager.write(txn, (i * 3) % 20, payload=str(i))
            yield from manager.read(txn, (i * 7 + 1) % 40)
            committed = yield from manager.commit(txn)
            done.append(committed)
        except DeadlockError:
            done.append(False)

    for i in range(30):
        cluster.env.process(worker(i))
    cluster.env.run()
    assert len(done) == 30
    assert any(done)  # most should commit
    assert not manager.active  # nothing leaks
