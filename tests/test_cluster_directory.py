"""Unit tests for the page-location directory."""

from repro.cluster.directory import PageDirectory


def test_register_and_holders():
    directory = PageDirectory()
    directory.register(5, 0)
    directory.register(5, 2)
    assert directory.holders(5) == {0, 2}
    assert directory.cached_anywhere(5)
    assert not directory.cached_anywhere(6)


def test_register_idempotent():
    directory = PageDirectory()
    directory.register(1, 0)
    directory.register(1, 0)
    assert directory.copy_count(1) == 1


def test_unregister_removes_holder():
    directory = PageDirectory()
    directory.register(1, 0)
    directory.register(1, 1)
    directory.unregister(1, 0)
    assert directory.holders(1) == {1}
    directory.unregister(1, 1)
    assert not directory.cached_anywhere(1)


def test_unregister_unknown_is_noop():
    directory = PageDirectory()
    directory.unregister(99, 3)  # must not raise
    assert directory.holders(99) == set()


def test_remote_holder_excludes_requester():
    directory = PageDirectory()
    directory.register(7, 1)
    assert directory.remote_holder(7, requester=1) is None
    assert directory.remote_holder(7, requester=0) == 1


def test_remote_holder_deterministic_lowest_id():
    directory = PageDirectory()
    directory.register(7, 2)
    directory.register(7, 1)
    assert directory.remote_holder(7, requester=0) == 1


def test_last_copy_detection():
    directory = PageDirectory()
    directory.register(3, 0)
    assert directory.is_last_copy(3, 0)
    directory.register(3, 1)
    assert not directory.is_last_copy(3, 0)
    directory.unregister(3, 1)
    assert directory.is_last_copy(3, 0)


def test_last_copy_false_for_noncached():
    directory = PageDirectory()
    assert not directory.is_last_copy(3, 0)


def test_directory_accounts_updates_on_network():
    class FakeNetwork:
        def __init__(self):
            self.calls = 0

        def account_only(self, kind):
            self.calls += 1

    network = FakeNetwork()
    directory = PageDirectory(network)
    directory.register(1, 0)
    directory.register(1, 0)  # no change, no message
    directory.unregister(1, 0)
    directory.unregister(1, 0)  # no change, no message
    assert network.calls == 2


def test_remote_holder_stays_lowest_under_churn():
    """The incremental lowest-id holder survives register/unregister."""
    directory = PageDirectory()
    for node in (5, 3, 8):
        directory.register(1, node)
    assert directory.remote_holder(1, requester=9) == 3
    directory.unregister(1, 3)       # drop the current lowest
    assert directory.remote_holder(1, requester=9) == 5
    directory.register(1, 2)         # a new lowest arrives
    assert directory.remote_holder(1, requester=9) == 2
    directory.unregister(1, 8)       # dropping a non-lowest is inert
    assert directory.remote_holder(1, requester=9) == 2
    directory.unregister(1, 2)
    assert directory.remote_holder(1, requester=9) == 5
    assert directory.remote_holder(1, requester=5) is None
    directory.unregister(1, 5)
    assert not directory.cached_anywhere(1)


def test_unregister_many_matches_per_page_unregister():
    batched, looped = PageDirectory(), PageDirectory()
    pages = [1, 2, 3, 4]
    for directory in (batched, looped):
        for page in pages:
            directory.register(page, 0)
            directory.register(page, page)
    batched.unregister_many([1, 2, 99, 3], node_id=0)  # 99: no-op
    for page in (1, 2, 99, 3):
        looped.unregister(page, 0)
    for page in pages:
        assert batched.holders(page) == looped.holders(page)
        assert (batched.remote_holder(page, requester=7)
                == looped.remote_holder(page, requester=7))
        assert batched.copy_count(page) == looped.copy_count(page)


def test_unregister_many_accounts_batched_updates():
    class FakeNetwork:
        def __init__(self):
            self.messages = 0

        def account_only(self, kind):
            self.messages += 1

        def account_many(self, kind, count):
            self.messages += count

    network = FakeNetwork()
    directory = PageDirectory(network)
    for page in (1, 2, 3):
        directory.register(page, 0)
    registered = network.messages
    directory.unregister_many([1, 2, 3, 77], node_id=0)  # 77: no-op
    assert network.messages - registered == 3
