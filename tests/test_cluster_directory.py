"""Unit tests for the page-location directory."""

from repro.cluster.directory import PageDirectory


def test_register_and_holders():
    directory = PageDirectory()
    directory.register(5, 0)
    directory.register(5, 2)
    assert directory.holders(5) == {0, 2}
    assert directory.cached_anywhere(5)
    assert not directory.cached_anywhere(6)


def test_register_idempotent():
    directory = PageDirectory()
    directory.register(1, 0)
    directory.register(1, 0)
    assert directory.copy_count(1) == 1


def test_unregister_removes_holder():
    directory = PageDirectory()
    directory.register(1, 0)
    directory.register(1, 1)
    directory.unregister(1, 0)
    assert directory.holders(1) == {1}
    directory.unregister(1, 1)
    assert not directory.cached_anywhere(1)


def test_unregister_unknown_is_noop():
    directory = PageDirectory()
    directory.unregister(99, 3)  # must not raise
    assert directory.holders(99) == set()


def test_remote_holder_excludes_requester():
    directory = PageDirectory()
    directory.register(7, 1)
    assert directory.remote_holder(7, requester=1) is None
    assert directory.remote_holder(7, requester=0) == 1


def test_remote_holder_deterministic_lowest_id():
    directory = PageDirectory()
    directory.register(7, 2)
    directory.register(7, 1)
    assert directory.remote_holder(7, requester=0) == 1


def test_last_copy_detection():
    directory = PageDirectory()
    directory.register(3, 0)
    assert directory.is_last_copy(3, 0)
    directory.register(3, 1)
    assert not directory.is_last_copy(3, 0)
    directory.unregister(3, 1)
    assert directory.is_last_copy(3, 0)


def test_last_copy_false_for_noncached():
    directory = PageDirectory()
    assert not directory.is_last_copy(3, 0)


def test_directory_accounts_updates_on_network():
    class FakeNetwork:
        def __init__(self):
            self.calls = 0

        def account_only(self, kind):
            self.calls += 1

    network = FakeNetwork()
    directory = PageDirectory(network)
    directory.register(1, 0)
    directory.register(1, 0)  # no change, no message
    directory.unregister(1, 0)
    directory.unregister(1, 0)  # no change, no message
    assert network.calls == 2
