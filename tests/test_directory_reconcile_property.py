"""Property: the directory survives any crash/partition schedule.

After a run whose fault schedule mixes node crashes, coordinator
crashes, and partitions — followed by a fault-free quiesce tail — the
page directory's columnar state must equal a from-scratch rebuild from
the actual buffer pool contents, and its own invariant audit must come
back clean.  This is the anti-entropy guarantee the chaos harness
asserts per seed, here driven by Hypothesis over random schedules.

The simulations are deliberately tiny (the shared fast-config scale,
few intervals) so the whole suite stays in the tier-1 budget.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.chaos import rebuild_directory_state
from repro.experiments.runner import Simulation
from repro.workload.spec import ClassSpec, WorkloadSpec, partition_pages

INTERVAL_MS = 2000.0
WARMUP_MS = 4000.0
#: Fault-free tail so deferred deliveries and heals all land.
QUIESCE_INTERVALS = 3


def _config() -> SystemConfig:
    return SystemConfig(
        num_nodes=3,
        num_pages=400,
        node=NodeParameters(buffer_bytes=256 * 1024),
        observation_interval_ms=INTERVAL_MS,
    )


def _workload(config: SystemConfig) -> WorkloadSpec:
    nogoal_pages, goal_pages = partition_pages(config.num_pages, 2)
    return WorkloadSpec(classes=[
        ClassSpec(class_id=0, goal_ms=None, pages=nogoal_pages,
                  pages_per_op=4, arrival_rate_per_node=0.02),
        ClassSpec(class_id=1, goal_ms=5.0, pages=goal_pages,
                  pages_per_op=4, arrival_rate_per_node=0.02),
    ])


# One drawn fault: (kind, start interval, duration/restart intervals,
# target).  Times are in whole intervals after the warm-up, offset off
# the interval boundary so injection order vs. the controller tick is
# never ambiguous.
_clauses = st.lists(
    st.tuples(
        st.sampled_from(["crash", "coordcrash", "partition"]),
        st.integers(min_value=0, max_value=4),   # start interval
        st.integers(min_value=1, max_value=3),   # duration intervals
        st.integers(min_value=0, max_value=2),   # node (crash/partition)
    ),
    min_size=1,
    max_size=3,
)


def _spec(clauses) -> str:
    parts = []
    coord_end = 0.0  # serialize coordcrash windows (overlap is rejected)
    crash_end = {}   # likewise per crashed node
    for kind, start, dur, node in clauses:
        at = WARMUP_MS + start * INTERVAL_MS + 500.0
        length = dur * INTERVAL_MS
        if kind == "coordcrash":
            at = max(at, coord_end)
            coord_end = at + length
            parts.append(f"coordcrash@{at:.0f}:dur={length:.0f}")
        elif kind == "crash":
            at = max(at, crash_end.get(node, 0.0))
            crash_end[node] = at + length
            parts.append(f"crash@{at:.0f}:node={node}:restart={length:.0f}")
        else:
            parts.append(f"partition@{at:.0f}:nodes={node}:dur={length:.0f}")
    return ";".join(parts)


@given(clauses=_clauses, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=12, deadline=None)
def test_directory_matches_rebuild_after_any_schedule(clauses, seed):
    spec = _spec(clauses)
    config = _config()
    sim = Simulation(
        config=config, workload=_workload(config), seed=seed,
        warmup_ms=WARMUP_MS, faults=spec,
    )
    last_end = max(
        float(part.split("@")[1].split(":")[0])
        + float(part.split("=")[-1])
        for part in spec.split(";")
    )
    faulty = max(
        0, int((last_end - WARMUP_MS) // INTERVAL_MS) + 1
    )
    sim.run(intervals=faulty + QUIESCE_INTERVALS)

    cluster = sim.cluster
    actual = cluster.pool_contents()
    assert cluster.directory.audit(actual) == []
    assert cluster.directory.state() == rebuild_directory_state(actual)
    # And reconciliation agrees there is nothing left to repair.
    assert cluster.reconcile_directory("property_test") == 0
