"""Unit tests for the collect-phase agents."""

import pytest

from repro.core.agent import ClassAgent


def test_snapshot_reports_arrivals_and_rate():
    agent = ClassAgent(node_id=0, class_id=1)
    for t in (1.0, 2.0, 3.0):
        agent.on_arrival(t)
    report = agent.snapshot(interval_ms=1000.0, now=1000.0)
    assert report.arrivals == 3
    assert report.arrival_rate == pytest.approx(0.003)
    assert report.node_id == 0
    assert report.class_id == 1


def test_snapshot_reports_mean_response_time():
    agent = ClassAgent(node_id=0, class_id=1)
    agent.on_complete(10.0, now=1.0)
    agent.on_complete(20.0, now=2.0)
    report = agent.snapshot(interval_ms=1000.0, now=1000.0)
    assert report.completions == 2
    assert report.mean_response_ms == pytest.approx(15.0)


def test_snapshot_resets_the_window():
    agent = ClassAgent(node_id=0, class_id=1)
    agent.on_arrival(1.0)
    agent.on_complete(10.0, now=1.0)
    agent.snapshot(interval_ms=1000.0, now=1000.0)
    second = agent.snapshot(interval_ms=1000.0, now=2000.0)
    assert second.arrivals == 0
    assert second.completions == 0
    assert second.mean_response_ms == 0.0


def test_lifetime_statistics_survive_snapshots():
    agent = ClassAgent(node_id=0, class_id=1)
    agent.on_complete(10.0, now=1.0)
    agent.snapshot(interval_ms=1000.0, now=1000.0)
    agent.on_complete(30.0, now=1500.0)
    agent.snapshot(interval_ms=1000.0, now=2000.0)
    assert agent.lifetime_completions == 2
    assert agent.lifetime_mean_response_ms == pytest.approx(20.0)


def test_first_report_is_always_significant():
    agent = ClassAgent(node_id=0, class_id=1)
    report = agent.snapshot(interval_ms=1000.0, now=1000.0)
    assert agent.significant_change(report)


def test_unchanged_measurements_not_significant():
    agent = ClassAgent(node_id=0, class_id=1, report_threshold=0.05)
    agent.on_arrival(1.0)
    agent.on_complete(10.0, now=5.0)
    first = agent.snapshot(interval_ms=1000.0, now=1000.0)
    agent.mark_reported(first)
    agent.on_arrival(1001.0)
    agent.on_complete(10.2, now=1005.0)  # 2 % change < 5 % threshold
    second = agent.snapshot(interval_ms=1000.0, now=2000.0)
    assert not agent.significant_change(second)


def test_large_change_is_significant():
    agent = ClassAgent(node_id=0, class_id=1, report_threshold=0.05)
    agent.on_arrival(1.0)
    agent.on_complete(10.0, now=5.0)
    first = agent.snapshot(interval_ms=1000.0, now=1000.0)
    agent.mark_reported(first)
    agent.on_arrival(1001.0)
    agent.on_complete(20.0, now=1005.0)
    second = agent.snapshot(interval_ms=1000.0, now=2000.0)
    assert agent.significant_change(second)


def test_empty_intervals_not_significant_after_empty_report():
    agent = ClassAgent(node_id=0, class_id=1)
    first = agent.snapshot(interval_ms=1000.0, now=1000.0)
    agent.mark_reported(first)
    second = agent.snapshot(interval_ms=1000.0, now=2000.0)
    assert not agent.significant_change(second)


def test_reports_sent_counter():
    agent = ClassAgent(node_id=0, class_id=1)
    report = agent.snapshot(interval_ms=1000.0, now=1000.0)
    agent.mark_reported(report)
    assert agent.reports_sent == 1
