"""Unit tests for the canned workload mixes."""

import pytest

from repro.cluster.config import SystemConfig
from repro.workload.presets import oltp_dss_mix, uniform_multiclass


def test_oltp_dss_mix_shape():
    config = SystemConfig()
    workload = oltp_dss_mix(config)
    oltp = workload.spec_for(1)
    dss = workload.spec_for(2)
    background = workload.spec_for(0)
    assert oltp.goal_ms < dss.goal_ms
    assert oltp.pages_per_op < dss.pages_per_op
    assert oltp.skew > dss.skew
    assert background.goal_ms is None


def test_oltp_dss_page_sets_disjoint():
    config = SystemConfig()
    workload = oltp_dss_mix(config)
    sets = [set(c.pages) for c in workload.classes]
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            assert sets[i].isdisjoint(sets[j])


def test_uniform_multiclass_builds_k_classes():
    config = SystemConfig()
    workload = uniform_multiclass(config, goals_ms=[3.0, 6.0, 12.0])
    assert [c.class_id for c in workload.goal_classes] == [1, 2, 3]
    assert workload.spec_for(2).goal_ms == 6.0
    assert workload.no_goal_class is not None


def test_uniform_multiclass_covers_database():
    config = SystemConfig()
    workload = uniform_multiclass(config, goals_ms=[5.0])
    covered = set()
    for spec in workload.classes:
        covered.update(spec.pages)
    assert covered == set(range(config.num_pages))


def test_uniform_multiclass_runs(fast_config):
    from repro.experiments.runner import Simulation

    workload = uniform_multiclass(
        fast_config, goals_ms=[5.0, 10.0], arrival_rate_per_node=0.01
    )
    sim = Simulation(config=fast_config, workload=workload, seed=3)
    sim.run(intervals=4)
    assert sim.controller.interval_index == 4
    assert set(sim.controller.series) == {1, 2}
