"""Tests for the control-plane fault domain.

Covers the coordinator crash/restart protocol (state wipe, epoch bump,
re-learned allocations), the dead-epoch rejection of deferred
ALLOCATIONs, the degraded-mode state machine with hysteresis, the
anti-entropy directory reconciliation, and the end-to-end feedback-loop
behaviour under ``coordcrash`` and ``partition`` faults.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.directory import DirectoryInvariantError, PageDirectory
from repro.core.agent import AgentReport
from repro.core.controller import GoalOrientedController
from repro.core.coordinator import Coordinator, CoordinatorDecision
from repro.experiments.runner import Simulation

PAGE = 4096


def _report(node_id, completions=5, rate=0.01, rt=10.0, time=100.0):
    return AgentReport(
        node_id=node_id, class_id=1, arrivals=completions,
        completions=completions, mean_response_ms=rt,
        arrival_rate=rate, time=time,
    )


def _controller(fast_config, **kwargs):
    cluster = Cluster(fast_config, seed=0)
    controller = GoalOrientedController(cluster, {1: 5.0}, **kwargs)
    return cluster, controller, controller.coordinators[1]


# -- coordinator crash / restart (unit) --------------------------------


def test_coordinator_crash_wipes_state_and_restart_bumps_epoch():
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    coordinator.window.observe([PAGE] * 3, 10.0, 1.0, time=100.0)
    coordinator.window.observe(
        [2 * PAGE, PAGE, PAGE], 9.0, 1.0, time=200.0
    )
    coordinator.receive_goal_report(_report(0))
    coordinator.receive_nogoal_report(_report(0))
    coordinator.receive_hit_info(0, 5, 5)
    assert coordinator.epoch == 0

    coordinator.on_coordinator_crash(now=250.0)
    assert len(coordinator.window) == 0
    assert coordinator.invalidated_points == 2
    assert coordinator.goal_reports == {}
    assert coordinator.nogoal_reports == {}
    assert coordinator.hit_info == {}
    assert coordinator.crashes == 1
    assert coordinator.epoch == 0  # the epoch bumps at restart

    coordinator.on_coordinator_restart(
        now=300.0, granted=[3 * PAGE, PAGE, 0]
    )
    assert coordinator.epoch == 1
    assert list(coordinator.current_allocation) == [3 * PAGE, PAGE, 0]


def test_record_outage_keeps_decision_log_interval_aligned():
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    decision = coordinator.record_outage(now=100.0)
    assert decision.observed_rt is None
    assert not decision.satisfied
    [record] = list(coordinator.decision_log)
    assert record.mechanism == "coord_down"
    assert record.time == 100.0


# -- deferred delivery and the epoch gate ------------------------------


def _decision(nbytes):
    return CoordinatorDecision(
        observed_rt=10.0, observed_nogoal_rt=None, satisfied=False,
        new_allocation=np.array([float(nbytes)] * 3),
    )


def test_apply_defers_to_partitioned_node(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._apply(1, coordinator, _decision(8 * PAGE),
                      cut=frozenset({0}))
    # Node 0 got nothing; the others applied.
    assert cluster.dedicated_bytes(1) == [0, 8 * PAGE, 8 * PAGE]
    assert controller._pending == {0: {1: (0, 8 * PAGE)}}
    assert controller.allocations_deferred == 1
    # The coordinator keeps its previous belief for the deferred node.
    assert coordinator.current_allocation[0] == 0.0


def test_drain_pending_applies_current_epoch(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._apply(1, coordinator, _decision(8 * PAGE),
                      cut=frozenset({0}))
    controller._drain_pending(0, now=100.0)
    assert cluster.dedicated_bytes(1) == [8 * PAGE] * 3
    assert coordinator.current_allocation[0] == 8 * PAGE
    assert controller._pending == {}
    assert controller.stale_allocations_rejected == 0


def test_drain_pending_rejects_dead_epoch(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._apply(1, coordinator, _decision(8 * PAGE),
                      cut=frozenset({0}))
    # The coordinator crashes and restarts while node 0 is cut: the
    # queued ALLOCATION was computed under epoch 0, which is now dead.
    coordinator.on_coordinator_crash(now=50.0)
    coordinator.on_coordinator_restart(
        now=60.0, granted=cluster.dedicated_bytes(1)
    )
    controller._drain_pending(0, now=100.0)
    assert controller.stale_allocations_rejected == 1
    assert cluster.dedicated_bytes(1)[0] == 0  # never applied
    assert controller._pending == {}


def test_fresh_ship_supersedes_queued_allocation(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._apply(1, coordinator, _decision(8 * PAGE),
                      cut=frozenset({0}))
    assert controller._pending[0][1] == (0, 8 * PAGE)
    # The node re-syncs and the next interval ships a newer size
    # directly: the stale queue entry must not survive to overwrite it.
    controller._apply(1, coordinator, _decision(4 * PAGE))
    assert controller._pending == {}
    assert cluster.dedicated_bytes(1) == [4 * PAGE] * 3


# -- degraded-mode state machine ---------------------------------------


class _FakeFaults:
    """Scriptable control-plane fault state for tick-level tests."""

    def __init__(self):
        self.coord_crashes = 0
        self.down_until = 0.0
        self.cut = ()

    def coordinator_down(self, now):
        return now < self.down_until

    def partitioned_nodes(self, now):
        return tuple(self.cut)


def test_degraded_enter_after_threshold_and_hysteresis_rejoin(fast_config):
    cluster, controller, _ = _controller(
        fast_config, degraded_after=3, rejoin_after=2
    )
    faults = _FakeFaults()
    cluster.faults = faults
    faults.cut = (1,)
    for tick in range(3):
        controller._control_fault_tick(now=float(tick))
    assert controller.degraded[1]
    assert controller.degraded_entries == 1
    # One interval of contact is not enough to rejoin...
    faults.cut = ()
    controller._control_fault_tick(now=3.0)
    assert controller.degraded[1]
    # ...a second consecutive one is.
    controller._control_fault_tick(now=4.0)
    assert not controller.degraded[1]
    assert controller.degraded_exits == 1


def test_contact_interruption_resets_rejoin_streak(fast_config):
    cluster, controller, _ = _controller(
        fast_config, degraded_after=2, rejoin_after=2
    )
    faults = _FakeFaults()
    cluster.faults = faults
    faults.cut = (0,)
    controller._control_fault_tick(now=0.0)
    controller._control_fault_tick(now=1.0)
    assert controller.degraded[0]
    faults.cut = ()
    controller._control_fault_tick(now=2.0)  # streak 1
    faults.cut = (0,)
    controller._control_fault_tick(now=3.0)  # interrupted
    faults.cut = ()
    controller._control_fault_tick(now=4.0)  # streak 1 again
    assert controller.degraded[0]
    controller._control_fault_tick(now=5.0)  # streak 2: rejoin
    assert not controller.degraded[0]


def test_degraded_thresholds_validated(fast_config):
    cluster = Cluster(fast_config, seed=0)
    with pytest.raises(ValueError):
        GoalOrientedController(cluster, {1: 5.0}, degraded_after=0)
    with pytest.raises(ValueError):
        GoalOrientedController(cluster, {1: 5.0}, rejoin_after=0)


def test_subinterval_coordinator_crash_still_wipes_once(fast_config):
    # An outage shorter than one observation interval: by the time the
    # controller polls, the coordinator is already back up.  The crash
    # counter edge still wipes state (it died!) and recovers in the
    # same tick.
    cluster, controller, coordinator = _controller(fast_config)
    faults = _FakeFaults()
    cluster.faults = faults
    coordinator.window.observe([PAGE] * 3, 10.0, 1.0, time=1.0)
    faults.coord_crashes = 1
    faults.down_until = 5.0  # already expired at the next tick
    coord_down, _ = controller._control_fault_tick(now=10.0)
    assert not coord_down
    assert controller.coordinator_crashes == 1
    assert coordinator.invalidated_points == 1
    assert coordinator.epoch == 1


# -- directory audit / reconcile ---------------------------------------


def _fill(cluster, pages=range(0, 12)):
    def reader():
        for page in pages:
            yield from cluster.access_page(0, page, 0)
    cluster.env.process(reader())
    cluster.env.run()


def test_audit_clean_on_live_cluster(fast_config):
    cluster = Cluster(fast_config, seed=0)
    _fill(cluster)
    assert cluster.directory.audit(cluster.pool_contents()) == []


def test_audit_detects_divergence_and_reconcile_repairs(fast_config):
    cluster = Cluster(fast_config, seed=0)
    _fill(cluster)
    directory = cluster.directory
    # Corrupt the directory behind the cluster's back: claim a page
    # nobody holds and forget one that is really cached.
    held = sorted(cluster.pool_contents())[0]
    directory.register(399, 2)
    directory.unregister(held, 0)
    actual = cluster.pool_contents()
    problems = directory.audit(actual)
    assert problems
    repaired = directory.reconcile(actual)
    assert repaired == 2
    assert directory.audit(actual) == []
    assert directory.state() == {
        page: (len(holders), min(holders), tuple(sorted(holders)))
        for page, holders in actual.items() if holders
    }


def test_reconcile_is_idempotent_and_counts_zero_when_clean(fast_config):
    cluster = Cluster(fast_config, seed=0)
    _fill(cluster)
    assert cluster.reconcile_directory("test") == 0
    assert cluster.reconciles == 1
    assert cluster.reconcile_repairs == 0


def test_reconcile_directory_raises_on_unrepairable_state(fast_config):
    cluster = Cluster(fast_config, seed=0)
    _fill(cluster)

    class BrokenDirectory(PageDirectory):
        """A directory whose audit never comes back clean."""

        __slots__ = ()

        def audit(self, actual):
            return ["synthetic inconsistency"]

    cluster.directory = BrokenDirectory()
    with pytest.raises(DirectoryInvariantError):
        cluster.reconcile_directory("test")


# -- end-to-end feedback loop under control-plane faults ---------------


def test_coordcrash_bumps_epoch_and_keeps_log_aligned(
    fast_config, fast_workload
):
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=0,
        warmup_ms=4000.0, faults="coordcrash@9000:dur=4000",
    )
    sim.run(intervals=10)
    controller = sim.controller
    coordinator = controller.coordinators[1]
    assert controller.coordinator_crashes == 1
    assert coordinator.epoch == 1
    # One record per interval, outages included.
    records = list(coordinator.decision_log)
    assert len(records) == 10
    outage = [r for r in records if r.mechanism == "coord_down"]
    assert len(outage) == 2
    # The adopted allocation matches what the cluster really granted.
    assert [float(b) for b in coordinator.current_allocation] == [
        float(b) for b in sim.cluster.dedicated_bytes(1)
    ]
    assert sim.cluster.reconciles >= 1


def test_partition_defers_and_delivers_or_rejects(
    fast_config, fast_workload
):
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=0,
        warmup_ms=4000.0,
        faults="partition@7000:nodes=0:dur=8000",
    )
    sim.run(intervals=12)
    controller = sim.controller
    assert controller.reports_unreachable > 0
    assert controller.degraded_entries >= 1
    assert controller.degraded_exits == controller.degraded_entries
    assert not controller._pending  # everything drained after the heal
    assert not any(controller.degraded)


def test_no_fault_layer_skips_control_plane_entirely(
    fast_config, fast_workload
):
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=0,
        warmup_ms=4000.0,
    )
    sim.run(intervals=4)
    controller = sim.controller
    assert sim.cluster.faults is None
    assert controller.coordinator_crashes == 0
    assert controller.reports_unreachable == 0
    assert controller.allocations_deferred == 0
    assert controller.coordinators[1].epoch == 0
