"""Unit tests for the resource primitives (FCFS and priority queues)."""

import pytest

from repro.sim.engine import Environment
from repro.sim.resources import PriorityResource, Resource


def _hold(env, resource, duration, log, name, priority=0.0):
    with resource.request(priority) as req:
        yield req
        log.append(("start", name, env.now))
        yield env.timeout(duration)
    log.append(("end", name, env.now))


def test_capacity_one_serializes():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(_hold(env, res, 5.0, log, "a"))
    env.process(_hold(env, res, 5.0, log, "b"))
    env.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 10.0),
    ]


def test_fcfs_order():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def late(name, arrive):
        yield env.timeout(arrive)
        yield from _hold(env, res, 2.0, log, name)

    env.process(late("first", 0.0))
    env.process(late("second", 0.5))
    env.process(late("third", 1.0))
    env.run()
    starts = [entry for entry in log if entry[0] == "start"]
    assert [s[1] for s in starts] == ["first", "second", "third"]


def test_capacity_two_runs_in_parallel():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []
    env.process(_hold(env, res, 5.0, log, "a"))
    env.process(_hold(env, res, 5.0, log, "b"))
    env.process(_hold(env, res, 5.0, log, "c"))
    env.run()
    assert ("start", "b", 0.0) in log
    assert ("start", "c", 5.0) in log


def test_invalid_capacity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_queue_length_and_count():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(_hold(env, res, 10.0, log, "a"))
    env.process(_hold(env, res, 10.0, log, "b"))
    env.process(_hold(env, res, 10.0, log, "c"))
    env.run(until=1.0)
    assert res.count == 1
    assert res.queue_length == 2


def test_utilization_tracks_busy_time():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user():
        yield from _hold(env, res, 4.0, log, "u")

    env.process(user())
    env.run(until=10.0)
    assert res.utilization() == pytest.approx(0.4)


def test_mean_wait_accounts_queueing():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []
    env.process(_hold(env, res, 4.0, log, "a"))
    env.process(_hold(env, res, 4.0, log, "b"))
    env.run()
    # a waited 0, b waited 4 => mean 2.
    assert res.mean_wait == pytest.approx(2.0)


def test_request_grant_value_is_wait_time():
    env = Environment()
    res = Resource(env, capacity=1)
    waits = []

    def proc():
        with res.request() as req:
            waited = yield req
            waits.append(waited)
            yield env.timeout(3.0)

    env.process(proc())
    env.process(proc())
    env.run()
    assert waits == [0.0, 3.0]


def test_cancel_waiting_request_frees_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        yield from _hold(env, res, 10.0, log, "holder")

    def impatient():
        request = res.request()
        yield env.timeout(1.0)
        res.release(request)  # give up while still queued
        log.append(("gave up", env.now))

    env.process(holder())
    env.process(impatient())
    env.run()
    assert ("gave up", 1.0) in log
    assert res.queue_length == 0


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    log = []

    def requester(name, priority, arrive):
        yield env.timeout(arrive)
        yield from _hold(env, res, 2.0, log, name, priority)

    env.process(requester("holder", 0, 0.0))
    env.process(requester("low", 5, 0.1))
    env.process(requester("high", 1, 0.2))
    env.run()
    starts = [entry[1] for entry in log if entry[0] == "start"]
    assert starts == ["holder", "high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    log = []

    def requester(name, arrive):
        yield env.timeout(arrive)
        yield from _hold(env, res, 2.0, log, name, priority=1)

    env.process(requester("holder", 0.0))
    env.process(requester("first", 0.1))
    env.process(requester("second", 0.2))
    env.run()
    starts = [entry[1] for entry in log if entry[0] == "start"]
    assert starts == ["holder", "first", "second"]
