"""Unit tests for workload specifications and page-set helpers."""

import pytest

from repro.workload.spec import (
    ClassSpec,
    WorkloadSpec,
    partition_pages,
    shared_pages,
)


def goal_class(**overrides):
    defaults = dict(
        class_id=1, goal_ms=5.0, pages=(0, 1, 2, 3), skew=0.0,
        pages_per_op=4, arrival_rate_per_node=0.01,
    )
    defaults.update(overrides)
    return ClassSpec(**defaults)


def test_no_goal_class_must_not_have_goal():
    with pytest.raises(ValueError):
        ClassSpec(class_id=0, goal_ms=3.0, pages=(0,))


def test_goal_class_needs_goal():
    with pytest.raises(ValueError):
        ClassSpec(class_id=1, goal_ms=None, pages=(0,))


@pytest.mark.parametrize(
    "overrides",
    [
        {"goal_ms": 0.0},
        {"goal_ms": -1.0},
        {"pages": ()},
        {"pages_per_op": 0},
        {"arrival_rate_per_node": 0.0},
        {"skew": -0.5},
        {"class_id": -1},
    ],
)
def test_invalid_class_spec_rejected(overrides):
    with pytest.raises(ValueError):
        goal_class(**overrides)


def test_mean_interarrival():
    spec = goal_class(arrival_rate_per_node=0.02)
    assert spec.mean_interarrival_ms == pytest.approx(50.0)


def test_workload_spec_goal_classes_sorted():
    spec = WorkloadSpec(classes=[
        goal_class(class_id=2),
        ClassSpec(class_id=0, goal_ms=None, pages=(0,)),
        goal_class(class_id=1),
    ])
    assert [c.class_id for c in spec.goal_classes] == [1, 2]
    assert spec.no_goal_class.class_id == 0


def test_duplicate_class_ids_rejected():
    with pytest.raises(ValueError):
        WorkloadSpec(classes=[goal_class(), goal_class()])


def test_spec_for_lookup():
    spec = WorkloadSpec(classes=[goal_class()])
    assert spec.spec_for(1).goal_ms == 5.0
    with pytest.raises(KeyError):
        spec.spec_for(9)


def test_with_goal_replaces_one_class():
    spec = WorkloadSpec(classes=[goal_class()])
    updated = spec.with_goal(1, 9.0)
    assert updated.spec_for(1).goal_ms == 9.0
    assert spec.spec_for(1).goal_ms == 5.0  # original untouched


def test_partition_pages_disjoint_and_complete():
    sets = partition_pages(10, 3)
    flat = [p for s in sets for p in s]
    assert sorted(flat) == list(range(10))
    assert len(sets) == 3
    assert all(len(s) >= 3 for s in sets)


def test_partition_pages_validation():
    with pytest.raises(ValueError):
        partition_pages(2, 3)
    with pytest.raises(ValueError):
        partition_pages(5, 0)


def test_shared_pages_zero_is_own_set():
    own = (10, 11, 12, 13)
    assert shared_pages((0, 1, 2, 3), own, 0.0) == own


def test_shared_pages_full_is_base_set():
    base = (0, 1, 2, 3)
    shared = shared_pages(base, (10, 11, 12, 13), 1.0)
    assert shared == base


def test_shared_pages_half():
    base = (0, 1, 2, 3)
    own = (10, 11, 12, 13)
    shared = shared_pages(base, own, 0.5)
    assert len(shared) == 4
    assert shared[:2] == (0, 1)       # hot end comes from the base set
    assert set(shared[2:]) <= set(own)


def test_shared_pages_fraction_validated():
    with pytest.raises(ValueError):
        shared_pages((0,), (1,), 1.5)
