"""Tests for the warm-state fork server.

The headline guarantee mirrors ``--jobs``: the fork runner never
changes results.  A sweep point forked off a warmed parent must be
bit-identical to the same point run cold from scratch, for any ``jobs``
fan-out, and the planner must refuse (or fall back) whenever a sweep
cannot honour that guarantee.
"""

import pytest

from repro.experiments import forkserver
from repro.experiments.calibration import (
    GoalRange,
    calibrate_goal_range,
)
from repro.experiments.forkserver import (
    ForkUnavailableError,
    WarmDelta,
    WarmupInvarianceError,
    apply_delta,
    plan_sweep,
    run_warm_sweep,
    supports_fork,
    warm_fingerprint,
    warmup_invariant,
)
from repro.experiments.runner import (
    CALIBRATION_WARMUP_MS,
    DEFAULT_WARMUP_MS,
    RESILIENCE_WARMUP_MS,
    Simulation,
    default_workload,
)

requires_fork = pytest.mark.skipif(
    not supports_fork(), reason="platform has no os.fork"
)

#: A small calibrated range so sweeps skip the calibration runs.
GOAL_RANGE = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)


def _build_sim(fast_config, seed=3, goal_ms=4.0, warmup_ms=6_000.0):
    workload = default_workload(fast_config, goal_ms=goal_ms)
    return Simulation(
        config=fast_config, workload=workload, seed=seed,
        warmup_ms=warmup_ms,
    )


# -- planning ---------------------------------------------------------


def test_plan_sweep_rejects_unknown_runner():
    with pytest.raises(ValueError):
        plan_sweep("turbo", warm_keys=[1, 1])


def test_plan_sweep_cold_is_always_cold():
    assert plan_sweep("cold", warm_keys=[1, 1, 1]) == "cold"


@requires_fork
def test_plan_sweep_forks_only_shared_warm_keys():
    # Duplicated keys share warm state; all-distinct keys (e.g. one
    # seed per replicate) have nothing to amortize.
    assert plan_sweep("auto", warm_keys=[7, 7, 7]) == "fork"
    assert plan_sweep("auto", warm_keys=[7, 8, 9]) == "cold"
    with pytest.raises(ForkUnavailableError):
        plan_sweep("fork", warm_keys=[7, 8, 9])


@requires_fork
def test_plan_sweep_static_guard_rejects_unvetted_configure():
    unvetted = WarmDelta(configure=lambda sim: None)
    vetted = WarmDelta(configure=warmup_invariant(lambda sim: None))
    assert plan_sweep("auto", [1, 1], deltas=[unvetted] * 2) == "cold"
    assert plan_sweep("auto", [1, 1], deltas=[vetted] * 2) == "fork"
    with pytest.raises(ForkUnavailableError):
        plan_sweep("fork", [1, 1], deltas=[unvetted] * 2)


class _ProbeConfigure:
    """Configure callable that counts vetting-flag lookups."""

    def __init__(self, invariant):
        self.lookups = 0
        self.invariant = invariant

    def __call__(self, sim):
        return None

    @property
    def __warmup_invariant__(self):
        self.lookups += 1
        return self.invariant


@requires_fork
def test_plan_sweep_vets_each_unique_configure_once():
    # Sweeps repeat one delta shape across replicates; the planner
    # must evaluate the vetting flag once per callable, not per point.
    vetted = _ProbeConfigure(True)
    assert plan_sweep(
        "auto", [1] * 40, deltas=[WarmDelta(configure=vetted)] * 40
    ) == "fork"
    assert vetted.lookups == 1

    unvetted = _ProbeConfigure(False)
    assert plan_sweep(
        "auto", [1] * 40, deltas=[WarmDelta(configure=unvetted)] * 40
    ) == "cold"
    assert unvetted.lookups == 1


@requires_fork
def test_plan_sweep_vet_cache_is_per_callable():
    # One unvetted configure among many vetted ones still downgrades:
    # verdicts never leak across distinct callables.
    vetted = warmup_invariant(lambda sim: None)
    mixed = [WarmDelta(configure=vetted)] * 3 + [
        WarmDelta(configure=lambda sim: None)
    ]
    assert plan_sweep("auto", [1] * 4, deltas=mixed) == "cold"


@requires_fork
def test_vet_cache_does_not_weaken_runtime_clock_guard(fast_config):
    # A vetted-but-lying configure that advances the clock passes the
    # (cached) static check yet must still trip the fingerprint guard.
    @warmup_invariant
    def bad(sim):
        sim.env.run(until=sim.env.now + 1.0)

    deltas = [WarmDelta(configure=bad)] * 2
    assert plan_sweep("auto", [1, 1], deltas=deltas) == "fork"
    sim = _build_sim(fast_config)
    sim.warm()
    with pytest.raises(WarmupInvarianceError):
        apply_delta(sim, deltas[0])


def test_plan_sweep_degrades_without_fork(monkeypatch):
    monkeypatch.setattr(forkserver, "supports_fork", lambda: False)
    assert forkserver.plan_sweep("auto", warm_keys=[1, 1]) == "cold"
    with pytest.raises(ForkUnavailableError):
        forkserver.plan_sweep("fork", warm_keys=[1, 1])


# -- the runtime invariance guard -------------------------------------


def test_apply_delta_requires_warmed_inactive_sim(fast_config):
    sim = _build_sim(fast_config)
    with pytest.raises(WarmupInvarianceError):
        apply_delta(sim, WarmDelta.for_goals({1: 5.0}))
    sim.start()
    with pytest.raises(WarmupInvarianceError):
        apply_delta(sim, WarmDelta.for_goals({1: 5.0}))


def test_apply_delta_sets_goals_without_perturbing_warm_state(
    fast_config,
):
    sim = _build_sim(fast_config)
    sim.warm()
    before = warm_fingerprint(sim)
    apply_delta(sim, WarmDelta.for_goals({1: 5.5}))
    assert sim.controller.goal_of(1) == 5.5
    assert warm_fingerprint(sim) == before


def test_runtime_guard_catches_rng_drawing_configure(fast_config):
    # Vetting is a promise, not a proof: a @warmup_invariant callable
    # that draws randomness passes the static planner but must be
    # caught by the before/after fingerprint.
    @warmup_invariant
    def bad(sim):
        sim.cluster.rng.random("page-select/goal")

    sim = _build_sim(fast_config)
    sim.warm()
    with pytest.raises(WarmupInvarianceError):
        apply_delta(sim, WarmDelta(configure=bad))


def test_runtime_guard_catches_clock_advance(fast_config):
    @warmup_invariant
    def bad(sim):
        sim.env.run(until=sim.env.now + 1.0)

    sim = _build_sim(fast_config)
    sim.warm()
    with pytest.raises(WarmupInvarianceError):
        apply_delta(sim, WarmDelta(configure=bad))


# -- fork == cold bit-identity ----------------------------------------


@requires_fork
def test_figure2_goal_sweep_fork_matches_cold(fast_config):
    from repro.experiments.figure2 import run_goal_sweep

    kwargs = dict(
        points=3, seed=5, intervals=3, config=fast_config,
        goal_range=GOAL_RANGE, warmup_ms=6_000.0,
    )
    fork = run_goal_sweep(runner="fork", **kwargs)
    cold = run_goal_sweep(runner="cold", **kwargs)
    assert fork.runner == "fork" and cold.runner == "cold"
    assert len(fork.points) == 3
    for f, c in zip(fork.points, cold.points):
        assert f.goal_ms == c.goal_ms
        assert f.seed == c.seed
        assert f.observed_rt == c.observed_rt
        assert f.dedicated_bytes == c.dedicated_bytes
        assert f.satisfied == c.satisfied


@requires_fork
def test_figure2_goal_sweep_jobs2_matches_jobs1(fast_config):
    from repro.experiments.figure2 import run_goal_sweep

    kwargs = dict(
        points=4, seed=5, intervals=3, config=fast_config,
        goal_range=GOAL_RANGE, warmup_ms=6_000.0, runner="fork",
    )
    serial = run_goal_sweep(jobs=1, **kwargs)
    parallel = run_goal_sweep(jobs=2, **kwargs)
    for a, b in zip(serial.points, parallel.points):
        assert a.goal_ms == b.goal_ms
        assert a.observed_rt == b.observed_rt
        assert a.dedicated_bytes == b.dedicated_bytes


@requires_fork
def test_figure2_goal_sweep_replicates_fork_per_seed(fast_config):
    from repro.experiments.figure2 import run_goal_sweep

    kwargs = dict(
        points=2, seed=5, replicates=2, intervals=3,
        config=fast_config, goal_range=GOAL_RANGE, warmup_ms=6_000.0,
    )
    fork = run_goal_sweep(runner="fork", **kwargs)
    cold = run_goal_sweep(runner="cold", **kwargs)
    assert [p.seed for p in fork.points] == [5, 5, 6, 6]
    for f, c in zip(fork.points, cold.points):
        assert (f.seed, f.goal_ms, f.observed_rt) == (
            c.seed, c.goal_ms, c.observed_rt
        )


@requires_fork
def test_multiclass_goal_sweep_fork_matches_cold(fast_config):
    from repro.experiments.multiclass import run_goal_sweep

    kwargs = dict(
        goal_pairs=((3.0, 8.0), (4.0, 10.0)), config=fast_config,
        intervals=3, tail=2, warmup_ms=6_000.0,
    )
    fork = run_goal_sweep(runner="fork", **kwargs)
    cold = run_goal_sweep(runner="cold", **kwargs)
    assert fork.runner == "fork"
    assert [p.to_row() for p in fork.points] == [
        p.to_row() for p in cold.points
    ]


@requires_fork
def test_resilience_goal_sweep_fork_matches_cold(fast_config):
    from repro.experiments.resilience import run_goal_sweep

    kwargs = dict(
        goals=(4.0, 7.0), seed=0, intervals=10, config=fast_config,
        replications=2, warmup_ms=6_000.0,
    )
    fork = run_goal_sweep(runner="fork", **kwargs)
    cold = run_goal_sweep(runner="cold", **kwargs)
    assert fork.runner == "fork"
    assert fork.fault_spec == cold.fault_spec
    for df, dc in zip(fork.results, cold.results):
        assert df.goal_ms == dc.goal_ms
        assert df.replicates == dc.replicates


def test_auto_falls_back_cold_without_fork(fast_config, monkeypatch):
    from repro.experiments.figure2 import run_goal_sweep

    monkeypatch.setattr(forkserver, "supports_fork", lambda: False)
    sweep = run_goal_sweep(
        points=2, seed=5, intervals=2, config=fast_config,
        goal_range=GOAL_RANGE, warmup_ms=4_000.0, runner="auto",
    )
    assert sweep.runner == "cold"
    assert len(sweep.points) == 2


# -- error propagation across the pipe --------------------------------


@requires_fork
def test_child_failure_reraises_in_parent(fast_config):
    def build():
        return _build_sim(fast_config)

    def explode(sim):
        raise KeyError("boom in the child")

    with pytest.raises(RuntimeError, match="boom in the child"):
        run_warm_sweep(
            build,
            deltas=[WarmDelta.for_goals({1: g}) for g in (4.0, 5.0)],
            measure=explode,
            runner="fork",
        )


@requires_fork
def test_child_invariance_violation_reraises_typed(fast_config):
    @warmup_invariant
    def bad(sim):
        sim.cluster.rng.random("page-select/goal")

    def build():
        return _build_sim(fast_config)

    with pytest.raises(WarmupInvarianceError):
        run_warm_sweep(
            build,
            deltas=[WarmDelta(configure=bad)] * 2,
            measure=lambda sim: None,
            runner="fork",
        )


# -- sweeps that can never fork refuse loudly -------------------------


def test_sharing_sweep_fork_runner_raises(fast_config):
    from repro.experiments.multiclass import run_sharing_sweep

    with pytest.raises(ForkUnavailableError):
        run_sharing_sweep(
            sharings=(0.0, 0.5), runner="fork", config=fast_config,
            intervals=2, tail=1, warmup_ms=2_000.0,
        )


def test_convergence_fork_runner_raises(fast_config):
    from repro.experiments.convergence import (
        ConvergenceSettings,
        convergence_experiment,
    )

    with pytest.raises(ForkUnavailableError):
        convergence_experiment(
            settings=ConvergenceSettings(config=fast_config),
            goal_range=GOAL_RANGE,
            runner="fork",
        )


# -- the shared warm-up constants -------------------------------------


def test_warmup_constants_pin_historical_values():
    assert DEFAULT_WARMUP_MS == 20_000.0
    assert CALIBRATION_WARMUP_MS == 60_000.0
    assert RESILIENCE_WARMUP_MS == 10_000.0


def test_calibration_defaults_use_shared_constant():
    import inspect

    from repro.experiments.calibration import measure_static_rt

    for fn in (measure_static_rt, calibrate_goal_range):
        default = inspect.signature(fn).parameters["warmup_ms"].default
        assert default == CALIBRATION_WARMUP_MS


def test_calibrate_goal_range_respects_passed_warmup(
    fast_config, monkeypatch
):
    # Regression: the anchors must inherit the caller's warmup_ms, not
    # a hard-coded literal.
    seen = []

    def fake_measure(workload, class_id, fraction, config, seed,
                     policy, warmup_ms, measure_ms):
        seen.append(warmup_ms)
        return 3.0 if fraction > 0.5 else 9.0

    from repro.experiments import calibration

    monkeypatch.setattr(calibration, "measure_static_rt", fake_measure)
    workload = default_workload(fast_config)
    result = calibrate_goal_range(
        workload, class_id=1, config=fast_config, warmup_ms=1_234.0
    )
    assert seen == [1_234.0, 1_234.0]
    assert (result.goal_min_ms, result.goal_max_ms) == (3.0, 9.0)
