"""Unit tests for the multiclass MVA solvers."""

import pytest

from repro.analytic.mva import (
    DEFAULT_EXACT_LIMIT,
    DELAY,
    QUEUE,
    ClosedNetwork,
    Station,
    exact_mva,
    machine_repairman,
    schweitzer_mva,
    solve,
)


def single_class_network(population=5, demand=2.0, think=50.0):
    return ClosedNetwork(
        stations=(Station("s0"),),
        class_names=("only",),
        demands=((demand,),),
        population=(population,),
        think_ms=(think,),
    )


# -- construction and validation --------------------------------------


def test_station_rejects_unknown_kind():
    with pytest.raises(ValueError):
        Station("x", kind="multiserver")


def test_network_validates_shapes():
    with pytest.raises(ValueError):
        ClosedNetwork(stations=(), class_names=("a",),
                      demands=((),), population=(1,))
    with pytest.raises(ValueError):
        ClosedNetwork(stations=(Station("s"),), class_names=(),
                      demands=(), population=())
    with pytest.raises(ValueError):  # demand row length mismatch
        ClosedNetwork(stations=(Station("s"),), class_names=("a",),
                      demands=((1.0, 2.0),), population=(1,))
    with pytest.raises(ValueError):  # negative demand
        ClosedNetwork(stations=(Station("s"),), class_names=("a",),
                      demands=((-1.0,),), population=(1,))
    with pytest.raises(ValueError):  # population length mismatch
        ClosedNetwork(stations=(Station("s"),), class_names=("a",),
                      demands=((1.0,),), population=(1, 2))
    with pytest.raises(ValueError):  # think length mismatch
        ClosedNetwork(stations=(Station("s"),), class_names=("a",),
                      demands=((1.0,),), population=(1,),
                      think_ms=(1.0, 2.0))


def test_state_space_is_population_product():
    net = ClosedNetwork(
        stations=(Station("s"),), class_names=("a", "b"),
        demands=((1.0,), (1.0,)), population=(3, 4),
    )
    assert net.state_space() == 4 * 5


# -- exact MVA --------------------------------------------------------


def test_exact_single_customer_has_no_queueing():
    # One customer never queues behind itself: R = D exactly.
    net = single_class_network(population=1, demand=3.0, think=10.0)
    sol = exact_mva(net)
    assert sol.response_ms[0] == pytest.approx(3.0)
    assert sol.throughput_per_ms[0] == pytest.approx(1 / 13.0)


def test_exact_matches_machine_repairman_closed_form():
    # The M/M/1//N closed form is an independent derivation.
    for population, demand, think in (
        (1, 2.0, 40.0), (4, 1.5, 30.0), (12, 3.0, 20.0),
    ):
        net = single_class_network(population, demand, think)
        sol = exact_mva(net)
        response, throughput = machine_repairman(
            population, demand, think
        )
        assert sol.response_ms[0] == pytest.approx(response, rel=1e-9)
        assert sol.throughput_per_ms[0] == pytest.approx(
            throughput, rel=1e-9
        )


def test_exact_symmetric_classes_get_equal_responses():
    net = ClosedNetwork(
        stations=(Station("cpu"), Station("disk")),
        class_names=("a", "b"),
        demands=((1.0, 2.0), (1.0, 2.0)),
        population=(3, 3),
        think_ms=(25.0, 25.0),
    )
    sol = exact_mva(net)
    assert sol.response_ms[0] == pytest.approx(sol.response_ms[1])
    assert sol.throughput_per_ms[0] == pytest.approx(
        sol.throughput_per_ms[1]
    )


def test_exact_delay_station_adds_no_queueing():
    # A pure-delay network: response is the raw demand at any load.
    net = ClosedNetwork(
        stations=(Station("d", kind=DELAY),),
        class_names=("a",),
        demands=((4.0,),),
        population=(20,),
        think_ms=(1.0,),
    )
    sol = exact_mva(net)
    assert sol.response_ms[0] == pytest.approx(4.0)


def test_exact_utilization_is_throughput_times_demand():
    net = single_class_network(population=6, demand=2.0, think=30.0)
    sol = exact_mva(net)
    assert sol.utilization["s0"] == pytest.approx(
        sol.throughput_per_ms[0] * 2.0
    )
    name, util = sol.bottleneck()
    assert name == "s0" and 0.0 < util < 1.0


def test_exact_empty_class_is_ignored():
    net = ClosedNetwork(
        stations=(Station("s"),),
        class_names=("a", "empty"),
        demands=((2.0,), (5.0,)),
        population=(4, 0),
        think_ms=(30.0, 30.0),
    )
    sol = exact_mva(net)
    lone = single_class_network(4, 2.0, 30.0)
    assert sol.response_ms[0] == pytest.approx(
        exact_mva(lone).response_ms[0]
    )
    assert sol.throughput_per_ms[1] == 0.0


# -- Schweitzer -------------------------------------------------------


def test_schweitzer_exact_at_population_one():
    # Q - Q_c/1 removes the whole tagged class: exact at N=1.
    net = single_class_network(population=1, demand=2.5, think=20.0)
    assert schweitzer_mva(net).response_ms[0] == pytest.approx(
        exact_mva(net).response_ms[0], rel=1e-6
    )


def test_schweitzer_close_to_exact_mid_population():
    net = ClosedNetwork(
        stations=(Station("cpu"), Station("disk"), Station("net")),
        class_names=("a", "b"),
        demands=((0.5, 2.0, 0.3), (1.0, 1.0, 0.6)),
        population=(8, 6),
        think_ms=(40.0, 60.0),
    )
    exact = exact_mva(net)
    approx = schweitzer_mva(net)
    for c in range(2):
        rel = abs(approx.response_ms[c] - exact.response_ms[c])
        rel /= exact.response_ms[c]
        assert rel < 0.05


# -- solver selection -------------------------------------------------


def test_solve_auto_picks_by_state_space():
    small = single_class_network(population=5)
    assert solve(small, method="auto").method == "exact"
    big = single_class_network(population=DEFAULT_EXACT_LIMIT + 5)
    assert solve(big, method="auto").method == "schweitzer"
    assert solve(small, method="schweitzer").method == "schweitzer"
    with pytest.raises(ValueError):
        solve(small, method="simulate")


def test_machine_repairman_validates():
    with pytest.raises(ValueError):
        machine_repairman(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        machine_repairman(3, 0.0, 1.0)
