"""Tests for the resilience experiment and its recovery metrics."""

import pytest

from repro.core.coordinator import DecisionRecord
from repro.experiments.resilience import (
    _recovery_metrics,
    control_fault_spec,
    default_fault_spec,
    quick_config,
    run_resilience,
)
from repro.faults import FaultSchedule
from repro.faults.injector import InjectedFault


# -- metric computation (pure) -----------------------------------------


def _record(time, rt, goal=5.0, satisfied=False):
    return DecisionRecord(
        time=time, observed_rt=rt, goal_ms=goal, satisfied=satisfied,
        mechanism=None, allocation_total=0.0,
    )


def test_recovery_metrics_counts_intervals_and_area():
    records = [
        _record(1000.0, 4.0, satisfied=True),
        _record(2000.0, 9.0),            # fault hits at 1500
        _record(3000.0, 7.0),
        _record(4000.0, 4.5, satisfied=True),
    ]
    faults = [InjectedFault("crash", 1500.0, 0, 2000.0)]
    [outcome] = _recovery_metrics(records, faults, interval_ms=1000.0)
    assert outcome.reattained_after == 3
    # (9-5)*1s + (7-5)*1s + 0 = 6 ms*s
    assert outcome.violation_area == pytest.approx(6.0)


def test_recovery_metrics_never_reattained():
    records = [_record(2000.0, 9.0), _record(3000.0, 8.0)]
    faults = [InjectedFault("crash", 1500.0, 0, 2000.0)]
    [outcome] = _recovery_metrics(records, faults, interval_ms=1000.0)
    assert outcome.reattained_after is None
    assert outcome.violation_area == pytest.approx(7.0)


def test_recovery_metrics_skips_empty_intervals():
    # Intervals without observations still count toward the
    # reattainment delay but contribute no violation area.
    records = [
        _record(2000.0, None),
        _record(3000.0, 6.0, satisfied=True),
    ]
    faults = [InjectedFault("crash", 1500.0, 0, 2000.0)]
    [outcome] = _recovery_metrics(records, faults, interval_ms=1000.0)
    assert outcome.reattained_after == 2
    assert outcome.violation_area == pytest.approx(1.0)


# -- the default schedule ----------------------------------------------


def test_default_fault_spec_parses_and_scales():
    spec = default_fault_spec(40, 2000.0, warmup_ms=10_000.0)
    schedule = FaultSchedule.parse(spec)
    kinds = [c.kind for c in schedule.clauses]
    assert kinds == ["crash", "netloss", "diskslow", "crash"]
    crash_times = [
        c.time_ms for c in schedule.clauses if c.kind == "crash"
    ]
    assert crash_times == [10_000 + 0.25 * 80_000, 10_000 + 0.70 * 80_000]


def test_default_fault_spec_needs_room_to_recover():
    with pytest.raises(ValueError):
        default_fault_spec(4, 2000.0)


# -- end-to-end --------------------------------------------------------


@pytest.fixture(scope="module")
def small_run():
    return run_resilience(
        seed=0, intervals=30, config=quick_config(),
        replications=1, warmup_ms=6_000.0,
    )


def test_resilience_reports_every_scheduled_fault(small_run):
    [rep] = small_run.replicates
    assert [f.kind for f in rep.faults] == [
        "crash", "netloss", "diskslow", "crash",
    ]
    assert len(rep.intervals) == 30


def test_resilience_feedback_loop_reacted(small_run):
    [rep] = small_run.replicates
    assert rep.invalidated_points > 0        # crash invalidated points
    assert small_run.crash_outcomes()


def test_resilience_run_to_run_determinism(small_run):
    again = run_resilience(
        seed=0, intervals=30, config=quick_config(),
        replications=1, warmup_ms=6_000.0,
    )
    assert again.fault_spec == small_run.fault_spec
    assert again.replicates[0].observed_rt == \
        small_run.replicates[0].observed_rt
    assert again.replicates[0].faults == small_run.replicates[0].faults
    assert again.replicates[0].reports_dropped == \
        small_run.replicates[0].reports_dropped


def test_resilience_reattains_after_crashes():
    # The acceptance bar: with the default schedule the goal class
    # re-enters its tolerance band after every injected crash.
    data = run_resilience(
        seed=0, intervals=40, config=quick_config(), replications=1,
    )
    assert data.all_crashes_reattained()
    for outcome in data.crash_outcomes():
        assert outcome.reattained_after <= 30


def test_resilience_text_and_chart_render(small_run):
    text = small_run.to_text()
    assert "all crashes reattained:" in text
    assert "mean time-to-goal-reattainment" in text
    assert small_run.to_chart()


def test_resilience_csv_export(small_run, tmp_path):
    path = tmp_path / "resilience.csv"
    small_run.save_csv(str(path))
    lines = path.read_text().strip().splitlines()
    assert lines[0] == "interval,observed_rt_ms,goal_ms,satisfied"
    assert len(lines) == 31


# -- the control-plane schedule ----------------------------------------


def test_control_fault_spec_parses_and_scales():
    spec = control_fault_spec(40, 2000.0, warmup_ms=10_000.0)
    schedule = FaultSchedule.parse(spec)
    kinds = [c.kind for c in schedule.clauses]
    assert kinds == ["coordcrash", "partition", "crash", "coordcrash"]
    first = schedule.clauses[0]
    assert first.time_ms == 10_000 + 0.20 * 80_000
    assert first.duration_ms == 3 * 2000.0
    partition = schedule.clauses[1]
    assert partition.nodes == (0,)
    assert partition.duration_ms == 5 * 2000.0


def test_control_fault_spec_needs_room_to_recover():
    with pytest.raises(ValueError):
        control_fault_spec(15, 2000.0)


def test_resilience_reattains_after_control_faults():
    # The acceptance bar for the control-plane fault domain: with the
    # coordinator crashing twice and node 0 partitioned into degraded
    # mode, the goal class re-enters its band after every fault.
    spec = control_fault_spec(40, 2000.0, warmup_ms=10_000.0)
    data = run_resilience(
        seed=0, intervals=40, config=quick_config(), replications=1,
        faults=spec,
    )
    assert len(data.control_outcomes()) == 3
    assert data.all_control_faults_reattained()
    assert data.all_crashes_reattained()
    [rep] = data.replicates
    assert rep.coordinator_crashes == 2
    assert rep.final_epoch == 2
    assert rep.degraded_entries >= 1
    assert rep.degraded_exits == rep.degraded_entries
    assert rep.reconciles >= 3  # two coordcrashes + partition heal
    text = data.to_text()
    assert "all control faults reattained: True" in text
    assert "control plane: coordinator crashes 2" in text
    assert "reattainment by kind:" in text
