"""Unit + property tests for hyperplane fitting and regularization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hyperplane import (
    Hyperplane,
    SingularFitError,
    fit_hyperplane,
    regularize_plane,
    weighted_mean_response_time,
)


def test_exact_interpolation_of_known_plane():
    coeffs = np.array([2.0, -3.0])
    intercept = 7.0
    xs = [np.array([0.0, 0.0]), np.array([1.0, 0.0]), np.array([0.0, 1.0])]
    points = [(x, float(coeffs @ x + intercept)) for x in xs]
    plane = fit_hyperplane(points)
    assert plane.coefficients == pytest.approx(coeffs)
    assert plane.intercept == pytest.approx(intercept)


def test_predict_and_gradient():
    plane = Hyperplane(coefficients=np.array([1.0, 2.0]), intercept=3.0)
    assert plane.predict([1.0, 1.0]) == 6.0
    assert plane.dim == 2
    grad = plane.gradient()
    grad[0] = 99.0  # must not mutate the plane
    assert plane.coefficients[0] == 1.0


def test_too_few_points_rejected():
    with pytest.raises(SingularFitError):
        fit_hyperplane([(np.array([1.0, 2.0]), 3.0)])


def test_degenerate_points_rejected():
    """Points on a line cannot determine a 2-D plane."""
    points = [
        (np.array([0.0, 0.0]), 1.0),
        (np.array([1.0, 1.0]), 2.0),
        (np.array([2.0, 2.0]), 3.0),
    ]
    with pytest.raises(SingularFitError):
        fit_hyperplane(points)


def test_least_squares_with_extra_points():
    coeffs = np.array([1.0, -1.0])
    rng = np.random.default_rng(0)
    points = []
    for _ in range(20):
        x = rng.uniform(-5, 5, 2)
        points.append((x, float(coeffs @ x + 2.0)))
    plane = fit_hyperplane(points)
    assert plane.coefficients == pytest.approx(coeffs, abs=1e-9)
    assert plane.intercept == pytest.approx(2.0, abs=1e-9)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60)
def test_property_fit_recovers_random_planes(dim, seed):
    rng = np.random.default_rng(seed)
    coeffs = rng.uniform(-10, 10, dim)
    intercept = float(rng.uniform(-10, 10))
    xs = rng.uniform(-100, 100, (dim + 1, dim))
    points = [(x, float(coeffs @ x + intercept)) for x in xs]
    try:
        plane = fit_hyperplane(points)
    except SingularFitError:
        return  # random points may be degenerate; nothing to check
    for x in xs:
        assert plane.predict(x) == pytest.approx(
            float(coeffs @ x + intercept), rel=1e-6, abs=1e-6
        )


def test_weighted_mean_response_time():
    assert weighted_mean_response_time([10.0, 20.0], [1.0, 3.0]) == 17.5


def test_weighted_mean_zero_rates():
    assert weighted_mean_response_time([10.0, 20.0], [0.0, 0.0]) == 0.0


def test_weighted_mean_shape_mismatch():
    with pytest.raises(ValueError):
        weighted_mean_response_time([1.0], [1.0, 2.0])


def test_regularize_clamps_wrong_signs():
    plane = Hyperplane(
        coefficients=np.array([-2.0, 0.5, -1.0]), intercept=10.0
    )
    anchor = (np.array([1.0, 1.0, 1.0]), 8.0)
    fixed = regularize_plane(plane, sign=-1, anchor=anchor)
    assert all(c < 0 for c in fixed.coefficients)
    # Correct-signed coefficients survive unchanged.
    assert fixed.coefficients[0] == -2.0
    assert fixed.coefficients[2] == -1.0
    # The plane passes through the anchor.
    assert fixed.predict(anchor[0]) == pytest.approx(8.0)


def test_regularize_positive_sign():
    plane = Hyperplane(coefficients=np.array([1.0, -0.2]), intercept=0.0)
    fixed = regularize_plane(
        plane, sign=1, anchor=(np.array([0.0, 0.0]), 5.0)
    )
    assert all(c > 0 for c in fixed.coefficients)
    assert fixed.intercept == pytest.approx(5.0)


def test_regularize_all_wrong_returns_none():
    plane = Hyperplane(coefficients=np.array([1.0, 2.0]), intercept=0.0)
    assert regularize_plane(
        plane, sign=-1, anchor=(np.zeros(2), 1.0)
    ) is None


def test_regularize_invalid_sign():
    plane = Hyperplane(coefficients=np.array([1.0]), intercept=0.0)
    with pytest.raises(ValueError):
        regularize_plane(plane, sign=0, anchor=(np.zeros(1), 1.0))
