"""Unit tests for crash recovery and in-doubt resolution."""

import pytest

from repro.cluster.config import DiskParameters
from repro.cluster.disk import Disk
from repro.sim.engine import Environment
from repro.txn.recovery import recover_all, recover_node
from repro.txn.wal import LogRecordKind, WriteAheadLog


def make_logs(num_nodes=3):
    env = Environment()
    logs = {
        n: WriteAheadLog(env, Disk(env, DiskParameters()), n)
        for n in range(num_nodes)
    }
    return env, logs


def force(env, log):
    def proc():
        yield from log.force()

    env.process(proc())
    env.run()


def test_locally_committed_redone():
    env, logs = make_logs()
    logs[1].append(7, LogRecordKind.UPDATE, page_id=4, payload="v")
    logs[1].append(7, LogRecordKind.COMMIT)
    force(env, logs[1])
    report = recover_node(logs, 1)
    assert report.locally_committed == {7}
    assert report.redone_pages == {4: "v"}
    assert not report.in_doubt


def test_in_doubt_resolved_commit_from_coordinator_log():
    """Participant crashed after PREPARE; coordinator committed."""
    env, logs = make_logs()
    # Participant node 1: durable UPDATE + PREPARE, no outcome.
    logs[1].append(9, LogRecordKind.UPDATE, page_id=4, payload="x")
    logs[1].append(9, LogRecordKind.PREPARE)
    force(env, logs[1])
    # Coordinator node 0: durable COMMIT (the commit point was reached).
    logs[0].append(9, LogRecordKind.COMMIT)
    force(env, logs[0])

    report = recover_node(logs, 1)
    assert report.in_doubt == {9}
    assert report.resolved_commit == {9}
    assert report.redone_pages == {4: "x"}


def test_in_doubt_resolved_abort_when_no_decision_anywhere():
    """Coordinator crashed before its commit point: presumed abort."""
    env, logs = make_logs()
    logs[1].append(9, LogRecordKind.UPDATE, page_id=4, payload="x")
    logs[1].append(9, LogRecordKind.PREPARE)
    force(env, logs[1])

    report = recover_node(logs, 1)
    assert report.resolved_abort == {9}
    assert report.redone_pages == {}


def test_unflushed_prepare_means_not_in_doubt():
    """A PREPARE that never reached disk does not survive the crash."""
    env, logs = make_logs()
    logs[1].append(9, LogRecordKind.UPDATE, page_id=4, payload="x")
    logs[1].append(9, LogRecordKind.PREPARE)
    # No force: the records are lost.
    report = recover_node(logs, 1)
    assert not report.in_doubt
    assert report.redone_pages == {}


def test_aborted_transaction_not_redone():
    env, logs = make_logs()
    logs[0].append(5, LogRecordKind.UPDATE, page_id=2, payload="bad")
    logs[0].append(5, LogRecordKind.PREPARE)
    logs[0].append(5, LogRecordKind.ABORT)
    force(env, logs[0])
    report = recover_node(logs, 0)
    assert not report.in_doubt
    assert report.redone_pages == {}


def test_recover_all_covers_every_node():
    env, logs = make_logs(3)
    for n in range(3):
        logs[n].append(n + 1, LogRecordKind.UPDATE, page_id=n,
                       payload=str(n))
        logs[n].append(n + 1, LogRecordKind.COMMIT)
        force(env, logs[n])
    reports = recover_all(logs)
    assert set(reports) == {0, 1, 2}
    for n, report in reports.items():
        assert report.redone_pages == {n: str(n)}


def test_recover_unknown_node_rejected():
    _, logs = make_logs(2)
    with pytest.raises(KeyError):
        recover_node(logs, 9)


def test_end_to_end_crash_consistency():
    """Run real transactions, then verify recovery agrees with the
    transaction manager's outcome on every node."""
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import SystemConfig
    from repro.txn.manager import TransactionManager

    cluster = Cluster(SystemConfig(num_pages=60), seed=5)
    manager = TransactionManager(cluster)
    outcomes = {}

    def worker(i):
        txn = manager.begin(i % 3)
        yield from manager.write(txn, i % 20, payload=f"w{i}")
        yield from manager.write(txn, (i + 7) % 20, payload=f"w{i}b")
        committed = yield from manager.commit(txn)
        outcomes[txn.txn_id] = committed

    for i in range(12):
        cluster.env.process(worker(i))
    cluster.env.run()

    reports = recover_all(manager.logs)
    committed_ids = {t for t, ok in outcomes.items() if ok}
    recovered = set()
    for report in reports.values():
        assert not report.resolved_abort  # no failures injected
        recovered |= report.committed
    assert committed_ids <= recovered
