"""Tests for the sim-vs-theory cross-validation harness.

The full three-case validation (the ``repro validate-analytic``
acceptance gate) simulates minutes of cluster time; it runs here on
the quick horizon, which uses the same configurations and tolerance.
"""

import pytest

from repro.analytic.validate import (
    DEFAULT_TOLERANCE,
    ClassComparison,
    ValidationReport,
    default_cases,
    product_form_config,
    run_validation,
    simulate_case,
)


def test_product_form_config_shrinks_cache_only():
    from repro.cluster.config import SystemConfig

    base = SystemConfig()
    config = product_form_config()
    assert config.node.buffer_bytes == 2 * base.page_size
    assert config.num_nodes == base.num_nodes
    assert config.num_pages == base.num_pages


def test_default_cases_are_the_three_acceptance_configs():
    cases = default_cases()
    assert [c.name for c in cases] == [
        "single-class", "two-class-symmetric", "two-class-asymmetric",
    ]
    quick = default_cases(quick=True)
    assert all(
        q.measure_ms < c.measure_ms for q, c in zip(quick, cases)
    )
    # The asymmetric case differentiates both op size and rate.
    asym = cases[2].workload.classes
    assert asym[0].pages_per_op != asym[1].pages_per_op
    assert (asym[0].arrival_rate_per_node
            != asym[1].arrival_rate_per_node)


def test_simulate_case_returns_means_and_counts():
    case = default_cases(quick=True)[0]
    import dataclasses

    short = dataclasses.replace(case, measure_ms=20_000.0)
    observed = simulate_case(short, seed=0)
    mean_ms, count = observed[1]
    assert count > 10
    assert mean_ms > 0


def test_comparison_and_report_accounting():
    good = ClassComparison(
        case="x", class_id=1, simulated_ms=10.0, predicted_ms=10.5,
        operations=100, tolerance=0.10,
    )
    bad = ClassComparison(
        case="x", class_id=2, simulated_ms=10.0, predicted_ms=15.0,
        operations=100, tolerance=0.10,
    )
    assert good.passed and not bad.passed
    report = ValidationReport(rows=[good, bad])
    assert not report.all_passed()
    assert report.worst_error() == pytest.approx(0.5)
    text = report.to_text()
    assert "FAIL" in text and "ok" in text
    data = report.to_dict()
    assert data["all_passed"] is False
    assert len(data["rows"]) == 2


def test_zero_simulated_time_never_passes():
    empty = ClassComparison(
        case="x", class_id=1, simulated_ms=0.0, predicted_ms=1.0,
        operations=0, tolerance=0.10,
    )
    assert empty.relative_error == float("inf")
    assert not empty.passed


@pytest.mark.slow
def test_quick_validation_passes_within_tolerance():
    # The acceptance gate: simulated R within 10% of exact MVA on all
    # three product-form-reducible cases.
    report = run_validation(quick=True, jobs=3)
    assert report.all_passed(), report.to_text()
    assert report.worst_error() <= DEFAULT_TOLERANCE
    assert len(report.rows) == 5  # 1 + 2 + 2 classes


def test_validation_jobs_do_not_change_results():
    # One short case, serial vs parallel: identical seeded simulations.
    import dataclasses

    case = dataclasses.replace(
        default_cases(quick=True)[0], measure_ms=10_000.0
    )
    serial = run_validation(cases=[case], jobs=1)
    parallel = run_validation(cases=[case], jobs=2)
    assert [r.simulated_ms for r in serial.rows] == [
        r.simulated_ms for r in parallel.rows
    ]
