"""Unit tests for the experiment harness (fast, scaled-down runs)."""

import numpy as np
import pytest

from repro.experiments.calibration import (
    GoalRange,
    calibrate_goal_range,
    measure_static_rt,
)
from repro.experiments.convergence import ConvergenceSettings, _next_goal
from repro.experiments.multiclass import (
    doubled_cache_config,
    multiclass_workload,
)
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import (
    Simulation,
    build_base_experiment,
    default_workload,
)
from repro.experiments.table1 import (
    PAPER_NODE_COUNTS,
    PAPER_TABLE1,
    build_problem,
    build_window,
    measure_row,
    synthetic_points,
)
from repro.sim.rng import RandomStreams


def test_default_workload_matches_paper_base(fast_config):
    workload = default_workload(fast_config)
    assert len(workload.classes) == 2
    goal = workload.spec_for(1)
    nogoal = workload.spec_for(0)
    assert goal.pages_per_op == 4
    assert nogoal.goal_ms is None
    assert set(goal.pages).isdisjoint(nogoal.pages)


def test_simulation_requires_workload(fast_config):
    with pytest.raises(ValueError):
        Simulation(config=fast_config, workload=None)


def test_simulation_run_advances_intervals(fast_config, fast_workload):
    sim = Simulation(config=fast_config, workload=fast_workload, seed=0)
    sim.run(intervals=3)
    assert sim.controller.interval_index == 3
    assert sim.observed_rt(1) is None or sim.observed_rt(1) > 0
    assert len(sim.satisfied(1)) == 3


def test_simulation_warmup_delays_controller(fast_config, fast_workload):
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=0,
        warmup_ms=3 * fast_config.observation_interval_ms,
    )
    sim.run(intervals=2)
    assert sim.controller.interval_index == 2
    assert sim.env.now == pytest.approx(
        5 * fast_config.observation_interval_ms, abs=0.01
    )


def test_build_base_experiment_defaults():
    sim = build_base_experiment(seed=0)
    assert sim.config.num_nodes == 3
    assert sim.controller.goal_of(1) == 3.0


def test_measure_static_rt_monotone(fast_config):
    """More dedicated memory must not slow the goal class down."""
    workload = default_workload(fast_config)
    rt_small = measure_static_rt(
        workload, 1, 1 / 3, fast_config, seed=3,
        warmup_ms=20_000, measure_ms=30_000,
    )
    rt_large = measure_static_rt(
        workload, 1, 2 / 3, fast_config, seed=3,
        warmup_ms=20_000, measure_ms=30_000,
    )
    assert rt_large < rt_small


def test_calibrate_goal_range_ordered(fast_config):
    workload = default_workload(fast_config)
    goal_range = calibrate_goal_range(
        workload, class_id=1, config=fast_config, seed=3,
        warmup_ms=20_000, measure_ms=30_000,
    )
    assert goal_range.goal_min_ms < goal_range.goal_max_ms
    assert goal_range.contains(
        0.5 * (goal_range.goal_min_ms + goal_range.goal_max_ms)
    )


def test_next_goal_differs_significantly():
    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=20.0)
    rng = RandomStreams(0).stream("g")
    current = 10.0
    for _ in range(20):
        new = _next_goal(rng, goal_range, current, min_change=0.25)
        assert goal_range.goal_min_ms <= new <= goal_range.goal_max_ms
        assert abs(new - current) > 0.25 * current
        current = new


def test_next_goal_narrow_range_jumps_to_far_end():
    goal_range = GoalRange(class_id=1, goal_min_ms=10.0, goal_max_ms=10.5)
    rng = RandomStreams(0).stream("g")
    assert _next_goal(rng, goal_range, 10.0, 0.5) == 10.5
    assert _next_goal(rng, goal_range, 10.5, 0.5) == 10.0


def test_synthetic_points_shape():
    points = synthetic_points(num_nodes=4, count=6, seed=1)
    assert len(points) == 6
    for alloc, rt_goal, rt_nogoal in points:
        assert alloc.shape == (4,)
        assert rt_goal > 0 and rt_nogoal > 0


def test_build_window_is_ready():
    for n in (2, 5, 8):
        window = build_window(n, seed=0)
        assert window.ready()


def test_build_problem_is_solvable():
    from repro.core.lp import solve_partitioning

    problem = build_problem(num_nodes=5, seed=0)
    solution = solve_partitioning(problem)
    assert solution is not None


def test_measure_row_produces_positive_times():
    row = measure_row(num_nodes=5, repetitions=3)
    assert row.lin_independence_ms > 0
    assert row.approximation_ms > 0
    assert row.optimization_ms > 0
    assert row.overall_ms == pytest.approx(
        row.lin_independence_ms + row.approximation_ms
        + row.optimization_ms
    )


def test_paper_table1_reference_complete():
    assert set(PAPER_TABLE1) == set(PAPER_NODE_COUNTS)
    for values in PAPER_TABLE1.values():
        assert len(values) == 4


def test_multiclass_workload_sharing_bounds():
    config = doubled_cache_config()
    workload = multiclass_workload(config, goal1_ms=4.0, goal2_ms=10.0,
                                   sharing=0.5)
    k1 = set(workload.spec_for(1).pages)
    k2 = set(workload.spec_for(2).pages)
    overlap = len(k1 & k2) / len(k2)
    assert overlap == pytest.approx(0.5, abs=0.01)


def test_multiclass_workload_requires_ordered_goals():
    config = doubled_cache_config()
    with pytest.raises(ValueError):
        multiclass_workload(config, goal1_ms=10.0, goal2_ms=4.0)


def test_doubled_cache_config_doubles_memory():
    base_bytes = 2 * 1024 * 1024
    config = doubled_cache_config()
    assert config.node.buffer_bytes == 2 * base_bytes


def test_format_table_alignment():
    text = format_table(
        ["a", "bb"], [[1, 2.5], [30, 4.0]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_format_series_zips_columns():
    text = format_series(["x", "y"], [[1, 2], [10.0, 20.0]])
    assert "10.000" in text and "2" in text


def test_convergence_settings_defaults():
    settings = ConvergenceSettings()
    assert settings.satisfied_before_change == 4
    assert settings.skew == 0.0
