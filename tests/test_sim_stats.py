"""Unit + property tests for the online statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    OnlineStats,
    TimeSeries,
    WindowStats,
    mean_confidence_interval,
    replicate_until,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def test_empty_stats():
    stats = OnlineStats()
    assert stats.count == 0
    assert stats.mean == 0.0
    assert stats.variance == 0.0


def test_single_sample():
    stats = OnlineStats()
    stats.add(5.0)
    assert stats.mean == 5.0
    assert stats.variance == 0.0
    assert stats.minimum == 5.0
    assert stats.maximum == 5.0


@given(st.lists(finite_floats, min_size=2, max_size=200))
@settings(max_examples=100)
def test_welford_matches_numpy(samples):
    stats = OnlineStats()
    for x in samples:
        stats.add(x)
    assert stats.mean == pytest.approx(np.mean(samples), abs=1e-6, rel=1e-9)
    assert stats.variance == pytest.approx(
        np.var(samples, ddof=1), abs=1e-4, rel=1e-6
    )


@given(
    st.lists(finite_floats, min_size=1, max_size=50),
    st.lists(finite_floats, min_size=1, max_size=50),
)
@settings(max_examples=100)
def test_merge_equals_combined(xs, ys):
    a = OnlineStats()
    b = OnlineStats()
    combined = OnlineStats()
    for x in xs:
        a.add(x)
        combined.add(x)
    for y in ys:
        b.add(y)
        combined.add(y)
    merged = a.merge(b)
    assert merged.count == combined.count
    assert merged.mean == pytest.approx(combined.mean, abs=1e-6, rel=1e-9)
    assert merged.variance == pytest.approx(
        combined.variance, abs=1e-3, rel=1e-5
    )
    assert merged.minimum == combined.minimum
    assert merged.maximum == combined.maximum


def test_merge_with_empty():
    a = OnlineStats()
    a.add(1.0)
    a.add(3.0)
    merged = a.merge(OnlineStats())
    assert merged.mean == 2.0
    assert merged.count == 2


def test_coefficient_of_variation():
    stats = OnlineStats()
    for x in (8.0, 12.0):
        stats.add(x)
    assert stats.coefficient_of_variation == pytest.approx(
        stats.stddev / 10.0
    )


def test_reset_clears_everything():
    stats = OnlineStats()
    stats.add(1.0)
    stats.reset()
    assert stats.count == 0
    assert stats.mean == 0.0


def test_window_stats_roll():
    window = WindowStats()
    window.add(1.0)
    window.add(3.0)
    finished = window.roll()
    assert finished.mean == 2.0
    window.add(10.0)
    assert window.window.mean == 10.0
    assert window.lifetime.count == 3


def test_time_series_roundtrip():
    series = TimeSeries("t")
    series.append(1.0, 10.0)
    series.append(2.0, 20.0)
    assert len(series) == 2
    assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
    assert series.last() == (2.0, 20.0)
    assert series.mean() == 15.0


def test_confidence_interval_empty_and_single():
    mean, half = mean_confidence_interval([])
    assert half == math.inf
    mean, half = mean_confidence_interval([3.0])
    assert mean == 3.0
    assert half == math.inf


def test_confidence_interval_shrinks_with_n():
    samples_small = [1.0, 2.0, 3.0]
    samples_large = samples_small * 20
    _, half_small = mean_confidence_interval(samples_small)
    _, half_large = mean_confidence_interval(samples_large)
    assert half_large < half_small


def test_confidence_interval_zero_variance():
    mean, half = mean_confidence_interval([5.0] * 10)
    assert mean == 5.0
    assert half == pytest.approx(0.0)


def test_replicate_until_stops_when_tight():
    mean, half, samples = replicate_until(
        lambda i: 2.0, target_half_width=0.5
    )
    assert mean == 2.0
    assert half <= 0.5
    assert len(samples) == 3  # the minimum


def test_replicate_until_respects_max():
    calls = []

    def noisy(i):
        calls.append(i)
        return float(i % 2) * 1000.0  # huge variance, never converges

    mean, half, samples = replicate_until(
        noisy, target_half_width=0.001, max_replications=10
    )
    assert len(samples) == 10
