"""Tests for the chaos harness (schedule generation and properties)."""

import json

import pytest

from repro.experiments.chaos import (
    ChaosMatrix,
    ChaosSeedResult,
    QUIESCE_FRACTION,
    generate_schedule,
    rebuild_directory_state,
    run_chaos,
    run_digest,
)
from repro.experiments.resilience import quick_config
from repro.experiments.runner import Simulation
from repro.faults import FaultSchedule
from repro.workload.spec import ClassSpec, WorkloadSpec


# -- schedule generation -----------------------------------------------


def test_generate_schedule_is_deterministic_in_seed():
    a = generate_schedule(7, 40, 2000.0, 3, warmup_ms=10_000.0)
    b = generate_schedule(7, 40, 2000.0, 3, warmup_ms=10_000.0)
    c = generate_schedule(8, 40, 2000.0, 3, warmup_ms=10_000.0)
    assert a == b
    assert a != c


@pytest.mark.parametrize("seed", range(12))
def test_generated_schedules_parse_and_cover_the_tentpole(seed):
    spec = generate_schedule(seed, 40, 2000.0, 3, warmup_ms=10_000.0)
    schedule = FaultSchedule.parse(spec)
    kinds = [c.kind for c in schedule.clauses]
    assert "coordcrash" in kinds
    assert "partition" in kinds
    assert set(kinds) <= {"coordcrash", "partition", "crash"}
    # Every fault (including its duration) ends inside the fault
    # window, leaving the quiesce tail fault-free.
    horizon = 40 * 2000.0
    for clause in schedule.clauses:
        end = clause.time_ms + (
            clause.restart_delay_ms
            if clause.kind == "crash" else clause.duration_ms
        )
        assert end <= 10_000.0 + (1.0 - QUIESCE_FRACTION) * horizon


def test_generate_schedule_validates_scale():
    with pytest.raises(ValueError):
        generate_schedule(0, 19, 2000.0, 3)
    with pytest.raises(ValueError):
        generate_schedule(0, 40, 2000.0, 1)


# -- directory rebuild helper ------------------------------------------


def test_rebuild_directory_state_matches_snapshot_format():
    pools = {7: {2}, 9: {0, 2, 1}, 11: set()}
    assert rebuild_directory_state(pools) == {
        7: (1, 2, (2,)),
        9: (3, 0, (0, 1, 2)),
    }


# -- end-state digest --------------------------------------------------


def _tiny_sim(seed=3):
    config = quick_config()
    workload = WorkloadSpec(classes=[
        ClassSpec(class_id=0, goal_ms=None, pages=range(0, 200),
                  pages_per_op=4, arrival_rate_per_node=0.02),
        ClassSpec(class_id=1, goal_ms=6.0, pages=range(200, 400),
                  pages_per_op=4, arrival_rate_per_node=0.02),
    ])
    return Simulation(
        config=config, workload=workload, seed=seed, warmup_ms=2000.0,
    )


def test_run_digest_separates_identical_from_diverged_runs():
    first, second = _tiny_sim(), _tiny_sim()
    first.run(intervals=4)
    second.run(intervals=4)
    assert run_digest(first) == run_digest(second)
    second.run(intervals=1)  # one extra interval: clocks diverge
    assert run_digest(first) != run_digest(second)


# -- the matrix --------------------------------------------------------


def _result(seed, passed=True):
    checks = {
        "directory_clean": True,
        "directory_matches_rebuild": True,
        "no_dead_epoch_applied": True,
        "goal_reattained": passed,
    }
    result = ChaosSeedResult(
        seed=seed, fault_spec="coordcrash@1:dur=1", checks=checks,
    )
    if not passed:
        result.failures.append("goal never reattained")
    return result


def test_matrix_all_passed_requires_results_and_identity():
    empty = ChaosMatrix(intervals=40, goal_ms=6.0)
    assert not empty.all_passed()
    good = ChaosMatrix(intervals=40, goal_ms=6.0, results=[_result(0)])
    assert good.all_passed()
    good.identity_ok = False
    assert not good.all_passed()


def test_matrix_text_names_failed_properties():
    matrix = ChaosMatrix(
        intervals=40, goal_ms=6.0,
        results=[_result(0), _result(1, passed=False)],
    )
    text = matrix.to_text()
    assert "FAIL: goal_reattained" in text
    assert "seed 1: goal never reattained" in text
    assert "all seeds passed: False" in text
    assert "no-fault pair bit-identical: True" in text


def test_matrix_json_roundtrip(tmp_path):
    matrix = ChaosMatrix(
        intervals=40, goal_ms=6.0, results=[_result(5)],
    )
    path = tmp_path / "matrix.json"
    matrix.save_json(str(path))
    payload = json.loads(path.read_text())
    assert payload["all_passed"] is True
    assert payload["results"][0]["seed"] == 5
    assert payload["results"][0]["checks"]["goal_reattained"] is True


# -- end-to-end --------------------------------------------------------


def test_run_chaos_single_seed_passes_all_properties():
    matrix = run_chaos(seeds=1, config=quick_config())
    assert len(matrix.results) == 1
    [result] = matrix.results
    assert set(result.checks) == {
        "directory_clean", "directory_matches_rebuild",
        "no_dead_epoch_applied", "goal_reattained",
    }
    assert result.coordinator_crashes >= 1
    assert result.final_epoch >= 1
    assert matrix.identity_ok
    assert matrix.all_passed()
