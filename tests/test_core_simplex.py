"""Unit + fuzz tests for the two-phase simplex solver."""

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core.simplex import (
    INFEASIBLE,
    OPTIMAL,
    UNBOUNDED,
    solve_lp,
)


def test_simple_bounded_minimum():
    # min -x - y  s.t.  x + y <= 4, x <= 3, y <= 3
    result = solve_lp(
        c=[-1.0, -1.0],
        a_ub=[[1.0, 1.0], [1.0, 0.0], [0.0, 1.0]],
        b_ub=[4.0, 3.0, 3.0],
    )
    assert result.ok
    assert result.objective == pytest.approx(-4.0)
    assert np.sum(result.x) == pytest.approx(4.0)


def test_equality_constraint():
    # min x + 2y  s.t.  x + y == 3
    result = solve_lp(
        c=[1.0, 2.0], a_eq=[[1.0, 1.0]], b_eq=[3.0]
    )
    assert result.ok
    assert result.x == pytest.approx([3.0, 0.0])
    assert result.objective == pytest.approx(3.0)


def test_infeasible_detected():
    # x <= 1 and x >= 2 simultaneously.
    result = solve_lp(
        c=[1.0],
        a_ub=[[1.0], [-1.0]],
        b_ub=[1.0, -2.0],
    )
    assert result.status == INFEASIBLE
    assert result.x is None


def test_unbounded_detected():
    result = solve_lp(c=[-1.0], a_ub=[[0.0]], b_ub=[1.0])
    assert result.status == UNBOUNDED


def test_no_constraints_nonnegative_costs():
    result = solve_lp(c=[2.0, 0.0])
    assert result.ok
    assert result.objective == 0.0


def test_no_constraints_negative_cost_unbounded():
    result = solve_lp(c=[-1.0])
    assert result.status == UNBOUNDED


def test_negative_rhs_normalized():
    # -x <= -2  (i.e. x >= 2), min x -> 2.
    result = solve_lp(c=[1.0], a_ub=[[-1.0]], b_ub=[-2.0])
    assert result.ok
    assert result.x == pytest.approx([2.0])


def test_degenerate_lp_terminates():
    """Bland's rule must prevent cycling on a degenerate instance."""
    result = solve_lp(
        c=[-0.75, 150.0, -0.02, 6.0],
        a_ub=[
            [0.25, -60.0, -0.04, 9.0],
            [0.5, -90.0, -0.02, 3.0],
            [0.0, 0.0, 1.0, 0.0],
        ],
        b_ub=[0.0, 0.0, 1.0],
    )
    assert result.ok
    assert result.objective == pytest.approx(-0.05)


def test_shape_validation():
    with pytest.raises(ValueError):
        solve_lp(c=[1.0, 2.0], a_ub=[[1.0]], b_ub=[1.0])
    with pytest.raises(ValueError):
        solve_lp(c=[1.0], a_eq=[[1.0, 2.0]], b_eq=[1.0])


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_against_scipy(seed):
    """Random LPs: status and optimal objective must match HiGHS."""
    rng = np.random.default_rng(seed)
    for _ in range(40):
        n = int(rng.integers(1, 6))
        m_ub = int(rng.integers(0, 4))
        m_eq = int(rng.integers(0, 2))
        c = rng.normal(size=n)
        a_ub = rng.normal(size=(m_ub, n)) if m_ub else None
        b_ub = rng.normal(size=m_ub) + 1.0 if m_ub else None
        a_eq = rng.normal(size=(m_eq, n)) if m_eq else None
        b_eq = rng.normal(size=m_eq) if m_eq else None
        ours = solve_lp(c, a_ub, b_ub, a_eq, b_eq)
        # presolve=False: HiGHS presolve reports some unbounded
        # problems as "infeasible or unbounded" -> infeasible.
        ref = linprog(
            c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq,
            bounds=(0, None), method="highs",
            options={"presolve": False},
        )
        ref_status = {0: OPTIMAL, 2: INFEASIBLE, 3: UNBOUNDED}.get(
            ref.status, "other"
        )
        assert ours.status == ref_status
        if ours.status == OPTIMAL:
            assert ours.objective == pytest.approx(
                ref.fun, rel=1e-6, abs=1e-6
            )
            # The solution itself must be feasible.
            if a_ub is not None:
                assert np.all(a_ub @ ours.x <= b_ub + 1e-7)
            if a_eq is not None:
                assert np.allclose(a_eq @ ours.x, b_eq, atol=1e-7)
            assert np.all(ours.x >= -1e-9)
