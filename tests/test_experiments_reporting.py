"""Unit tests for the plain-text reporting helpers."""

import subprocess
import sys
import os

from repro.experiments.reporting import _fmt, emit, format_series, format_table


def test_format_table_empty_rows():
    text = format_table(["a", "bb"], [])
    lines = text.splitlines()
    assert lines[0].split() == ["a", "bb"]
    assert set(lines[1]) <= {"-", " "}
    assert len(lines) == 2


def test_format_table_with_title():
    text = format_table(["x"], [[1]], title="T")
    assert text.splitlines()[0] == "T"


def test_format_table_alignment_widths():
    text = format_table(["col"], [["wide-cell"], ["x"]])
    lines = text.splitlines()
    # All rows padded to the widest cell.
    assert len(set(len(line) for line in lines)) == 1


def test_format_table_ragged_row_longer_than_headers():
    # Extra cells beyond the headers must not crash; they get their
    # own (unnamed) column.
    text = format_table(["a"], [[1, 2, 3]])
    assert "2" in text and "3" in text


def test_format_table_ragged_row_shorter_than_headers():
    text = format_table(["a", "b", "c"], [[1]])
    assert "1" in text


def test_format_series_zips_columns():
    text = format_series(["i", "v"], [[1, 2], [10.0, 20.0]])
    lines = text.splitlines()
    assert len(lines) == 4  # header + rule + 2 rows
    assert "10.000" in lines[2]


def test_fmt_float_precision():
    assert _fmt(1.23456) == "1.235"
    assert _fmt(1234.5) == "1234"  # large floats drop decimals
    assert _fmt(-0.5) == "-0.500"
    assert _fmt(7) == "7"
    assert _fmt("s") == "s"


def test_emit_writes_line(capsys):
    emit("hello")
    emit()
    captured = capsys.readouterr()
    assert captured.out == "hello\n\n"


def test_no_stray_prints_in_library():
    """The AST lint must pass on the current tree."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    result = subprocess.run(
        [sys.executable, os.path.join(root, "tools", "check_no_prints.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def _run_lint(root):
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return subprocess.run(
        [sys.executable,
         os.path.join(repo, "tools", "check_no_prints.py"), root],
        capture_output=True,
        text=True,
    )


def test_no_print_lint_flags_stray_print(tmp_path):
    """A bare print outside the allow-list fails with file:line."""
    pkg = tmp_path / "src" / "repro" / "telemetry"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("print('debug')\n")
    result = _run_lint(str(tmp_path))
    assert result.returncode == 1
    rel = os.path.join("src", "repro", "telemetry", "bad.py")
    assert f"{rel}:1" in result.stderr


def test_no_print_lint_allows_dashboard_asset(tmp_path):
    """The embedded dashboard module's print stays allow-listed, and
    a same-named file elsewhere fails with the allow-list reason."""
    pkg = tmp_path / "src" / "repro" / "telemetry"
    pkg.mkdir(parents=True)
    (pkg / "dashboard.py").write_text(
        'HTML = "<html></html>"\nprint(HTML)\n'
    )
    assert _run_lint(str(tmp_path)).returncode == 0
    stray = tmp_path / "src" / "repro" / "dashboard.py"
    stray.write_text("print('nope')\n")
    result = _run_lint(str(tmp_path))
    assert result.returncode == 1
    # The near-miss hint names the sanctioned path and its reason.
    assert os.path.join("telemetry", "dashboard.py") in result.stderr
    assert "dev preview" in result.stderr
