"""Unit tests for the closed-loop client driver."""

import pytest

from repro.cluster.cluster import Cluster
from repro.workload.closed import ClosedLoopDriver
from repro.workload.spec import ClassSpec


def make_spec(pages_per_op=2):
    return ClassSpec(
        class_id=1, goal_ms=5.0, pages=tuple(range(50)),
        pages_per_op=pages_per_op, arrival_rate_per_node=0.01,
    )


class CountSink:
    def __init__(self):
        self.arrivals = 0
        self.completions = 0
        self.response_times = []

    def on_arrival(self, node_id, class_id, now):
        self.arrivals += 1

    def on_complete(self, node_id, class_id, response_ms, now):
        self.completions += 1
        self.response_times.append(response_ms)


def test_parameters_validated(fast_config):
    cluster = Cluster(fast_config, seed=0)
    with pytest.raises(ValueError):
        ClosedLoopDriver(cluster, make_spec(), 0, 100.0)
    with pytest.raises(ValueError):
        ClosedLoopDriver(cluster, make_spec(), 1, 0.0)


def test_clients_complete_operations(fast_config):
    cluster = Cluster(fast_config, seed=1)
    sink = CountSink()
    driver = ClosedLoopDriver(
        cluster, make_spec(), clients_per_node=2,
        think_time_ms=50.0, sink=sink,
    )
    driver.start()
    cluster.env.run(until=20_000.0)
    assert driver.operations_completed > 0
    assert sink.completions == driver.operations_completed
    assert all(rt > 0 for rt in sink.response_times)


def test_in_flight_bounded_by_population(fast_config):
    cluster = Cluster(fast_config, seed=1)
    population = 3 * fast_config.num_nodes
    driver = ClosedLoopDriver(
        cluster, make_spec(), clients_per_node=3, think_time_ms=10.0
    )
    driver.start()
    for _ in range(200):
        if not cluster.env._queue:
            break
        cluster.env.step()
        assert 0 <= driver.in_flight <= population


def test_throughput_self_regulates(fast_config):
    """More clients raise throughput sublinearly once the system is
    loaded — the closed-loop signature."""

    def run(clients):
        cluster = Cluster(fast_config, seed=2)
        driver = ClosedLoopDriver(
            cluster, make_spec(pages_per_op=4),
            clients_per_node=clients, think_time_ms=5.0,
        )
        driver.start()
        cluster.env.run(until=30_000.0)
        return driver.throughput()

    t1 = run(1)
    t8 = run(8)
    assert t8 > t1            # more clients, more throughput...
    assert t8 < 8 * t1        # ...but sublinear under contention


def test_deterministic(fast_config):
    def run(seed):
        cluster = Cluster(fast_config, seed=seed)
        driver = ClosedLoopDriver(
            cluster, make_spec(), clients_per_node=2,
            think_time_ms=20.0,
        )
        driver.start()
        cluster.env.run(until=10_000.0)
        return driver.operations_completed

    assert run(7) == run(7)
