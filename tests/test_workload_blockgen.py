"""Block-drawn arrival front-end: draw-order equivalence properties.

The contract under test (see :mod:`repro.workload.blockgen`): for any
block size and any refill point, variates consumed through the block
columns are bit-identical to the ones the sequential front-end would
have drawn from the same stream — and the per-node dispatcher
reproduces the reference per-(node, class) coroutines' arrival trace
exactly, including across mid-run spec changes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.workload.blockgen import (
    DEFAULT_BLOCK,
    ExponentialColumn,
    ZipfColumn,
    node_dispatcher,
)
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import ClassSpec, WorkloadSpec
from repro.workload.trace import TraceRecorder
from repro.workload.zipf import ZipfPagePicker, ZipfSampler


# -- column-level equivalence (Hypothesis) --------------------------


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    block=st.integers(1, 257),
    offset=st.integers(0, 40),
    n=st.integers(1, 600),
    lambd=st.floats(1e-3, 1e3, allow_nan=False, allow_infinity=False),
)
def test_exponential_block_matches_sequential(seed, block, offset, n, lambd):
    """Block-drawn gaps == expovariate, any block size / stream state."""
    seq_rng = random.Random(seed)
    blk_rng = random.Random(seed)
    # Advance both streams to an arbitrary offset first: the column
    # must resume the exact sequence from wherever the stream stands.
    expected = [seq_rng.expovariate(lambd) for _ in range(offset + n)][offset:]
    for _ in range(offset):
        blk_rng.expovariate(lambd)
    column = ExponentialColumn(blk_rng, block=block)
    got = [column.next_neglog() / lambd for _ in range(n)]
    assert got == expected  # bit-identical, not approx


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    block=st.integers(1, 257),
    n=st.integers(1, 600),
    num_items=st.integers(1, 50),
    theta=st.floats(0.0, 1.5, allow_nan=False),
)
def test_zipf_block_matches_sequential(seed, block, n, num_items, theta):
    """Block-drawn ranks == sampler.sample, any block size."""
    sampler = ZipfSampler(num_items, theta)
    seq_rng = random.Random(seed)
    expected = [sampler.sample(seq_rng) for _ in range(n)]
    column = ZipfColumn(random.Random(seed), sampler, block=block)
    got = [column.next_rank() for _ in range(n)]
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    block=st.integers(1, 257),
    n=st.integers(2, 400),
    switch=st.data(),
    items_a=st.integers(1, 40),
    items_b=st.integers(1, 40),
    theta_a=st.floats(0.0, 1.2, allow_nan=False),
    theta_b=st.floats(0.0, 1.2, allow_nan=False),
)
def test_zipf_retarget_matches_sequential_switch(
    seed, block, n, switch, items_a, items_b, theta_a, theta_b
):
    """A mid-block sampler change re-maps only the unconsumed tail.

    Sequentially, every draw goes through the sampler in force at
    consumption time; retargeting the column at the same consumption
    index must yield the identical rank sequence.
    """
    cut = switch.draw(st.integers(0, n))
    sampler_a = ZipfSampler(items_a, theta_a)
    sampler_b = ZipfSampler(items_b, theta_b)
    seq_rng = random.Random(seed)
    expected = [sampler_a.sample(seq_rng) for _ in range(cut)]
    expected += [sampler_b.sample(seq_rng) for _ in range(n - cut)]
    column = ZipfColumn(random.Random(seed), sampler_a, block=block)
    got = [column.next_rank() for _ in range(cut)]
    column.retarget(sampler_b)
    got += [column.next_rank() for _ in range(n - cut)]
    assert got == expected


def test_column_block_size_validation():
    with pytest.raises(ValueError):
        ExponentialColumn(random.Random(0), block=0)
    with pytest.raises(ValueError):
        ZipfColumn(random.Random(0), ZipfSampler(4, 0.5), block=0)


def test_sample_from_uniform_matches_sample():
    sampler = ZipfSampler(17, 0.9)
    rng_a, rng_b = random.Random(7), random.Random(7)
    for _ in range(500):
        assert sampler.sample_from_uniform(rng_a.random()) == sampler.sample(
            rng_b
        )


# -- dispatcher vs. sequential reference front-end ------------------


def _workload():
    return WorkloadSpec(classes=[
        ClassSpec(class_id=0, goal_ms=None, pages=tuple(range(0, 40)),
                  skew=0.8, pages_per_op=3, arrival_rate_per_node=0.004),
        ClassSpec(class_id=1, goal_ms=50.0, pages=tuple(range(40, 90)),
                  skew=0.5, pages_per_op=2, arrival_rate_per_node=0.006),
        ClassSpec(class_id=2, goal_ms=80.0, pages=tuple(range(60, 120)),
                  pages_per_op=4, arrival_rate_per_node=0.002),
    ])


def _build(config, start_reference, block=DEFAULT_BLOCK):
    cluster = Cluster(config, seed=11)
    recorder = TraceRecorder()
    generator = WorkloadGenerator(cluster, _workload(), recorder=recorder)
    if start_reference:
        # The classic front-end: one coroutine per (node, class).
        for class_spec in generator.spec.classes:
            for node_id in range(cluster.num_nodes):
                cluster.env.process(
                    generator._arrivals(node_id, class_spec)
                )
    else:
        for node_id in range(cluster.num_nodes):
            cluster.env.process(
                node_dispatcher(generator, node_id, block=block)
            )
    return cluster, generator, recorder


@pytest.mark.parametrize("block", [1, 3, DEFAULT_BLOCK])
def test_dispatcher_trace_identical_to_reference(fast_config, block):
    ref_cluster, _, ref_rec = _build(fast_config, start_reference=True)
    blk_cluster, _, blk_rec = _build(
        fast_config, start_reference=False, block=block
    )
    ref_cluster.env.run(until=30_000.0)
    blk_cluster.env.run(until=30_000.0)
    assert ref_rec.records  # the horizon produced work
    assert blk_rec.records == ref_rec.records


def test_dispatcher_trace_identical_across_spec_change(fast_config):
    """Mid-run rate / page-set / goal changes keep the traces equal."""

    def evolve(generator):
        old = generator.spec
        generator.spec = WorkloadSpec(classes=[
            # class 0: arrival rate doubled (rescales pending gaps)
            ClassSpec(class_id=0, goal_ms=None, pages=old.classes[0].pages,
                      skew=0.8, pages_per_op=3,
                      arrival_rate_per_node=0.008),
            # class 1: new page set and skew (retargets rank columns)
            ClassSpec(class_id=1, goal_ms=50.0,
                      pages=tuple(range(100, 130)), skew=0.2,
                      pages_per_op=2, arrival_rate_per_node=0.006),
            # class 2: goal-only clone (same distribution object-for-
            # object — the picker must be reused, not rebuilt)
            ClassSpec(class_id=2, goal_ms=40.0, pages=old.classes[2].pages,
                      pages_per_op=4, arrival_rate_per_node=0.002),
        ])

    ref_cluster, ref_gen, ref_rec = _build(fast_config, start_reference=True)
    blk_cluster, blk_gen, blk_rec = _build(fast_config, start_reference=False)
    ref_cluster.env.run(until=15_000.0)
    blk_cluster.env.run(until=15_000.0)
    evolve(ref_gen)
    evolve(blk_gen)
    ref_cluster.env.run(until=40_000.0)
    blk_cluster.env.run(until=40_000.0)
    assert ref_rec.records
    assert blk_rec.records == ref_rec.records
    # The evolved trace actually exercised the new page set.
    new_pages = set(range(100, 130))
    assert any(
        set(r.pages) & new_pages for r in blk_rec.records if r.class_id == 1
    )


def test_start_uses_dispatcher_and_matches_reference(fast_config):
    """WorkloadGenerator.start() is wired to the block front-end."""
    ref_cluster, _, ref_rec = _build(fast_config, start_reference=True)
    cluster = Cluster(fast_config, seed=11)
    recorder = TraceRecorder()
    generator = WorkloadGenerator(cluster, _workload(), recorder=recorder)
    generator.start()
    ref_cluster.env.run(until=30_000.0)
    cluster.env.run(until=30_000.0)
    assert recorder.records == ref_rec.records


# -- picker / alias memoization (regression) ------------------------


def test_alias_tables_memoized_across_samplers():
    a = ZipfSampler(123, 0.77)
    b = ZipfSampler(123, 0.77)
    assert a._accept is b._accept and a._alias is b._alias
    c = ZipfSampler(123, 0.78)
    assert c._accept is not a._accept


def test_picker_reused_across_goal_clones(fast_config):
    """with_goal clones must not rebuild the page picker."""
    cluster = Cluster(fast_config, seed=0)
    spec = _workload()
    generator = WorkloadGenerator(cluster, spec)
    original = spec.spec_for(1)
    picker = generator._picker_for(original)
    clone = spec.with_goal(1, 123.0).spec_for(1)
    assert clone is not original
    assert generator._picker_for(clone) is picker
    # ...and the cache rebinds so the identity fast path now hits.
    assert generator._pickers[1][0] is clone


def test_picker_rebuilt_on_distribution_change(fast_config):
    cluster = Cluster(fast_config, seed=0)
    spec = _workload()
    generator = WorkloadGenerator(cluster, spec)
    picker = generator._picker_for(spec.spec_for(1))
    changed = ClassSpec(class_id=1, goal_ms=50.0,
                        pages=tuple(range(200, 250)), skew=0.5,
                        pages_per_op=2, arrival_rate_per_node=0.006)
    rebuilt = generator._picker_for(changed)
    assert rebuilt is not picker
    assert rebuilt.pages == list(range(200, 250))
