"""Unit tests for the §8 variance-objective extension."""

import numpy as np
import pytest

from repro.core.coordinator import Coordinator
from repro.core.hyperplane import Hyperplane
from repro.core.lp import (
    PartitioningProblem,
    VarianceProblem,
    solve_partitioning,
    solve_variance_partitioning,
)
from repro.core.measure import MeasureWindow

MB = 1024 * 1024


def asymmetric_planes():
    """Node 0 is slow (high intercept), node 1 faster; equal slopes.

    With a 12 ms goal, both nodes can be pulled exactly onto the goal
    (a = 2 MB, b = 0.5 MB), so the minimax optimum has zero spread.
    """
    return (
        Hyperplane(np.array([-4.0 / MB, 0.0]), 20.0),
        Hyperplane(np.array([0.0, -4.0 / MB]), 14.0),
    )


def test_variance_lp_equalizes_nodes():
    planes = asymmetric_planes()
    problem = VarianceProblem(
        node_planes=planes,
        weights=np.array([1.0, 1.0]),
        rt_goal=12.0,
        upper_bounds=np.array([2.0 * MB, 2.0 * MB]),
    )
    solution = solve_variance_partitioning(problem)
    assert solution is not None
    rt0 = planes[0].predict(solution.allocation)
    rt1 = planes[1].predict(solution.allocation)
    # Both nodes pulled onto the goal: (near) zero spread.
    assert abs(rt0 - rt1) < 0.2
    # The weighted mean meets the goal.
    assert 0.5 * (rt0 + rt1) == pytest.approx(12.0, abs=0.1)


def test_variance_objective_beats_nogoal_objective_on_spread():
    planes = asymmetric_planes()
    weights = np.array([1.0, 1.0])
    upper = np.array([2.0 * MB, 2.0 * MB])
    rt_goal = 11.0

    var_solution = solve_variance_partitioning(VarianceProblem(
        node_planes=planes, weights=weights, rt_goal=rt_goal,
        upper_bounds=upper,
    ))
    # The paper's default objective only constrains the weighted mean.
    mean_plane = Hyperplane(
        coefficients=0.5 * (planes[0].coefficients
                            + planes[1].coefficients),
        intercept=0.5 * (planes[0].intercept + planes[1].intercept),
    )
    nogoal_plane = Hyperplane(np.array([3.0 / MB, 1.0 / MB]), 1.0)
    default_solution = solve_partitioning(PartitioningProblem(
        goal_plane=mean_plane,
        nogoal_plane=nogoal_plane,
        rt_goal=rt_goal,
        upper_bounds=upper,
    ))

    def spread(allocation):
        rts = [p.predict(allocation) for p in planes]
        return max(rts) - min(rts)

    assert spread(var_solution.allocation) < spread(
        default_solution.allocation
    )


def test_variance_lp_respects_bounds():
    planes = asymmetric_planes()
    problem = VarianceProblem(
        node_planes=planes,
        weights=np.array([1.0, 3.0]),
        rt_goal=12.0,
        upper_bounds=np.array([1.0 * MB, 0.5 * MB]),
    )
    solution = solve_variance_partitioning(problem)
    assert np.all(solution.allocation >= -1e-6)
    assert np.all(
        solution.allocation <= problem.upper_bounds + 1e-6
    )


def test_variance_lp_unreachable_goal_relaxes():
    planes = asymmetric_planes()
    problem = VarianceProblem(
        node_planes=planes,
        weights=np.array([1.0, 1.0]),
        rt_goal=0.5,  # unreachable even with full memory
        upper_bounds=np.array([2.0 * MB, 2.0 * MB]),
    )
    solution = solve_variance_partitioning(problem)
    assert solution is not None
    assert solution.relaxed


def test_variance_problem_validation():
    planes = asymmetric_planes()
    with pytest.raises(ValueError):
        VarianceProblem(
            node_planes=planes, weights=np.array([1.0]),
            rt_goal=5.0, upper_bounds=np.array([MB, MB]),
        )
    with pytest.raises(ValueError):
        VarianceProblem(
            node_planes=planes, weights=np.array([1.0, 1.0]),
            rt_goal=0.0, upper_bounds=np.array([MB, MB]),
        )


def test_window_fits_node_planes():
    window = MeasureWindow(num_nodes=2)
    # RT_0 = 20 - 8a/MB ; RT_1 = 12 - 4b/MB
    allocs = [(0.0, 0.0), (MB, 0.0), (0.0, MB)]
    for i, (a, b) in enumerate(allocs):
        rts = np.array([20.0 - 8.0 * a / MB, 12.0 - 4.0 * b / MB])
        window.observe(
            [a, b], rt_goal=float(rts.mean()), rt_nogoal=1.0,
            time=float(i), per_node_rt=rts,
        )
    planes = window.fit_node_planes()
    assert planes[0].predict([MB, 0.0]) == pytest.approx(12.0)
    assert planes[1].predict([0.0, MB]) == pytest.approx(8.0)


def test_window_without_node_rts_refuses_node_planes():
    window = MeasureWindow(num_nodes=1)
    window.observe([0.0], 10.0, 1.0, time=0.0)
    window.observe([MB], 5.0, 1.0, time=1.0)
    with pytest.raises(ValueError):
        window.fit_node_planes()


def test_coordinator_accepts_variance_objective():
    coordinator = Coordinator(
        class_id=1, node_sizes=[2 * MB] * 2, goal_ms=10.0,
        objective="variance",
    )
    assert coordinator.objective == "variance"
    with pytest.raises(ValueError):
        Coordinator(
            class_id=1, node_sizes=[MB], goal_ms=1.0,
            objective="median",
        )
