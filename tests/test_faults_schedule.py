"""Unit tests for the fault spec grammar and deterministic schedules."""

import itertools

import pytest

from repro.faults import FaultSchedule
from repro.faults.schedule import SCHEDULE_STREAM, _parse_clause
from repro.sim.rng import RandomStreams


# -- grammar ----------------------------------------------------------


def test_parse_one_shot_crash_with_defaults():
    clause = _parse_clause("crash@5000")
    assert clause.kind == "crash"
    assert clause.time_ms == 5000.0
    assert not clause.periodic
    assert clause.node == "any"
    assert clause.restart_delay_ms == 2000.0


def test_parse_one_shot_with_options():
    clause = _parse_clause("crash@1000:node=2:restart=500")
    assert clause.node == 2
    assert clause.restart_delay_ms == 500.0


def test_parse_periodic_clause():
    clause = _parse_clause("netloss:every=10000:start=4000:p=0.5:dur=2000")
    assert clause.periodic
    assert clause.every_ms == 10000.0
    assert clause.start_ms == 4000.0
    assert clause.probability == 0.5
    assert clause.duration_ms == 2000.0


def test_parse_netdelay_and_diskslow_defaults():
    delay = _parse_clause("netdelay@1")
    assert delay.extra_ms == 1.0
    assert delay.duration_ms == 5000.0
    slow = _parse_clause("diskslow@1:factor=8")
    assert slow.factor == 8.0
    assert slow.node == "any"


def test_parse_spec_splits_on_semicolons():
    schedule = FaultSchedule.parse(
        "crash@1000; netloss@2000:p=0.1 ;; diskslow@3000"
    )
    assert len(schedule) == 3
    assert [c.kind for c in schedule.clauses] == [
        "crash", "netloss", "diskslow",
    ]


@pytest.mark.parametrize("bad", [
    "explode@1000",              # unknown kind
    "crash",                     # neither @TIME nor every=
    "crash@abc",                 # non-numeric time
    "crash@1000:p=0.5",          # key not allowed for kind
    "netloss@1000:p=1.5",        # probability out of range
    "diskslow@1000:factor=0.5",  # slowdown below 1
    "crash@1000:node=-1",        # negative node
    "crash@1000:node",           # malformed option
    "netloss:every=0",           # non-positive period
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        FaultSchedule.parse(bad)


# -- event generation -------------------------------------------------


def test_one_shot_events_in_time_order():
    schedule = FaultSchedule.parse(
        "diskslow@9000:node=1;crash@3000:node=0;netloss@6000"
    )
    events = list(schedule.events(RandomStreams(0), num_nodes=3))
    assert [e.kind for e in events] == ["crash", "netloss", "diskslow"]
    assert [e.time_ms for e in events] == [3000.0, 6000.0, 9000.0]


def test_periodic_clause_is_infinite_and_spaced():
    schedule = FaultSchedule.parse("crash:every=5000:node=0:restart=1")
    events = schedule.events(RandomStreams(0), num_nodes=3)
    first_four = list(itertools.islice(events, 4))
    assert [e.time_ms for e in first_four] == [
        5000.0, 10000.0, 15000.0, 20000.0,
    ]


def test_same_seed_same_events():
    spec = "crash:every=7000:jitter=2000;netloss@10000;diskslow:every=9000"
    a = list(itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(42), 4), 20
    ))
    b = list(itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(42), 4), 20
    ))
    assert a == b


def test_different_seed_changes_node_draws():
    spec = "crash:every=1000:node=any:restart=1"
    nodes = [
        tuple(
            e.node for e in itertools.islice(
                FaultSchedule.parse(spec).events(RandomStreams(s), 8), 16
            )
        )
        for s in range(6)
    ]
    assert len(set(nodes)) > 1


def test_node_any_resolved_within_cluster():
    spec = "crash:every=1000:node=any:restart=1"
    for event in itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(7), 3), 32
    ):
        assert 0 <= event.node < 3


def test_explicit_node_out_of_range_rejected_at_resolution():
    schedule = FaultSchedule.parse("crash@1000:node=5")
    with pytest.raises(ValueError):
        list(schedule.events(RandomStreams(0), num_nodes=3))


def test_schedule_uses_dedicated_stream():
    # Resolving a schedule must never touch workload streams: all
    # randomness comes from the faults/schedule stream.
    rng = RandomStreams(3)
    arrivals = rng.stream("arrivals/0")
    before = arrivals.getstate()
    list(itertools.islice(
        FaultSchedule.parse("crash:every=100:jitter=50").events(rng, 3), 10
    ))
    assert arrivals.getstate() == before
    assert SCHEDULE_STREAM in rng._streams
