"""Unit tests for the fault spec grammar and deterministic schedules."""

import itertools

import pytest

from repro.faults import FaultSchedule
from repro.faults.schedule import SCHEDULE_STREAM, _parse_clause
from repro.sim.rng import RandomStreams


# -- grammar ----------------------------------------------------------


def test_parse_one_shot_crash_with_defaults():
    clause = _parse_clause("crash@5000")
    assert clause.kind == "crash"
    assert clause.time_ms == 5000.0
    assert not clause.periodic
    assert clause.node == "any"
    assert clause.restart_delay_ms == 2000.0


def test_parse_one_shot_with_options():
    clause = _parse_clause("crash@1000:node=2:restart=500")
    assert clause.node == 2
    assert clause.restart_delay_ms == 500.0


def test_parse_periodic_clause():
    clause = _parse_clause("netloss:every=10000:start=4000:p=0.5:dur=2000")
    assert clause.periodic
    assert clause.every_ms == 10000.0
    assert clause.start_ms == 4000.0
    assert clause.probability == 0.5
    assert clause.duration_ms == 2000.0


def test_parse_netdelay_and_diskslow_defaults():
    delay = _parse_clause("netdelay@1")
    assert delay.extra_ms == 1.0
    assert delay.duration_ms == 5000.0
    slow = _parse_clause("diskslow@1:factor=8")
    assert slow.factor == 8.0
    assert slow.node == "any"


def test_parse_coordcrash_with_defaults():
    clause = _parse_clause("coordcrash@8000")
    assert clause.kind == "coordcrash"
    assert clause.time_ms == 8000.0
    assert clause.duration_ms == 5000.0
    assert clause.node is None
    assert clause.nodes is None


def test_parse_partition_node_list():
    clause = _parse_clause("partition@4000:nodes=2,0:dur=3000")
    assert clause.kind == "partition"
    assert clause.nodes == (2, 0)
    assert clause.duration_ms == 3000.0


def test_parse_partition_defaults_to_any():
    clause = _parse_clause("partition@4000")
    assert clause.nodes == "any"
    assert clause.duration_ms == 5000.0


def test_parse_spec_splits_on_semicolons():
    schedule = FaultSchedule.parse(
        "crash@1000; netloss@2000:p=0.1 ;; diskslow@3000"
    )
    assert len(schedule) == 3
    assert [c.kind for c in schedule.clauses] == [
        "crash", "netloss", "diskslow",
    ]


@pytest.mark.parametrize("bad", [
    "explode@1000",              # unknown kind
    "crash",                     # neither @TIME nor every=
    "crash@abc",                 # non-numeric time
    "crash@1000:p=0.5",          # key not allowed for kind
    "netloss@1000:p=1.5",        # probability out of range
    "diskslow@1000:factor=0.5",  # slowdown below 1
    "crash@1000:node=-1",        # negative node
    "crash@1000:node",           # malformed option
    "netloss:every=0",           # non-positive period
    "coordcrash@1000:dur=0",     # zero-length outage
    "coordcrash@1000:dur=-5",    # negative duration
    "netloss@1000:dur=0",        # zero-length episode
    "coordcrash@1000:node=0",    # coordcrash has no node key
    "partition@1000:nodes=0,x",  # non-integer node in the list
    "partition@1000:nodes=1,1",  # duplicate node in the list
    "partition@1000:nodes=-2",   # negative node in the list
    "partition@1000:p=0.5",      # key not allowed for kind
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        FaultSchedule.parse(bad)


@pytest.mark.parametrize("bad,fragment", [
    ("coordcrash@1000:dur=0", "dur must be a positive number"),
    ("coordcrash@1000:node=0", "allowed: dur"),
    ("partition@1000:nodes=0,x", "comma-separated"),
    ("partition@1000:nodes=1,1", "lists node 1 twice"),
    ("explode@1000", "unknown fault kind"),
])
def test_rejection_messages_name_the_problem(bad, fragment):
    with pytest.raises(ValueError, match=fragment):
        FaultSchedule.parse(bad)


# -- crash-window overlap validation ----------------------------------


def test_overlapping_coordcrash_windows_rejected():
    with pytest.raises(ValueError, match="overlapping crash windows"):
        FaultSchedule.parse(
            "coordcrash@1000:dur=5000;coordcrash@3000:dur=1000"
        )


def test_overlapping_node_crash_windows_rejected():
    with pytest.raises(ValueError, match="node 2"):
        FaultSchedule.parse(
            "crash@1000:node=2:restart=4000;crash@2000:node=2:restart=100"
        )


def test_disjoint_and_cross_target_windows_accepted():
    # Back-to-back windows (end == next start) do not overlap, and
    # different targets never conflict.
    schedule = FaultSchedule.parse(
        "coordcrash@1000:dur=2000;coordcrash@3000:dur=1000;"
        "crash@1500:node=0:restart=500;crash@1500:node=1:restart=500"
    )
    assert len(schedule) == 4


def test_node_any_crashes_exempt_from_overlap_check():
    # 'any' resolves per occurrence at event time; the parser cannot
    # know the target, so these must parse.
    schedule = FaultSchedule.parse(
        "crash@1000:node=any:restart=9000;crash@2000:node=any:restart=9000"
    )
    assert len(schedule) == 2


# -- partition / coordcrash event resolution --------------------------


def test_partition_nodes_resolved_and_validated():
    events = list(FaultSchedule.parse(
        "partition@1000:nodes=0,2:dur=100"
    ).events(RandomStreams(0), num_nodes=3))
    assert events[0].nodes == (0, 2)
    with pytest.raises(ValueError):
        list(FaultSchedule.parse("partition@1:nodes=5").events(
            RandomStreams(0), num_nodes=3
        ))


def test_partition_any_draws_one_seeded_node():
    spec = "partition:every=1000:nodes=any:dur=10"
    drawn = {
        e.nodes
        for e in itertools.islice(
            FaultSchedule.parse(spec).events(RandomStreams(5), 4), 16
        )
    }
    assert all(len(nodes) == 1 and 0 <= nodes[0] < 4 for nodes in drawn)
    assert len(drawn) > 1


# -- event generation -------------------------------------------------


def test_one_shot_events_in_time_order():
    schedule = FaultSchedule.parse(
        "diskslow@9000:node=1;crash@3000:node=0;netloss@6000"
    )
    events = list(schedule.events(RandomStreams(0), num_nodes=3))
    assert [e.kind for e in events] == ["crash", "netloss", "diskslow"]
    assert [e.time_ms for e in events] == [3000.0, 6000.0, 9000.0]


def test_periodic_clause_is_infinite_and_spaced():
    schedule = FaultSchedule.parse("crash:every=5000:node=0:restart=1")
    events = schedule.events(RandomStreams(0), num_nodes=3)
    first_four = list(itertools.islice(events, 4))
    assert [e.time_ms for e in first_four] == [
        5000.0, 10000.0, 15000.0, 20000.0,
    ]


def test_same_seed_same_events():
    spec = "crash:every=7000:jitter=2000;netloss@10000;diskslow:every=9000"
    a = list(itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(42), 4), 20
    ))
    b = list(itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(42), 4), 20
    ))
    assert a == b


def test_different_seed_changes_node_draws():
    spec = "crash:every=1000:node=any:restart=1"
    nodes = [
        tuple(
            e.node for e in itertools.islice(
                FaultSchedule.parse(spec).events(RandomStreams(s), 8), 16
            )
        )
        for s in range(6)
    ]
    assert len(set(nodes)) > 1


def test_node_any_resolved_within_cluster():
    spec = "crash:every=1000:node=any:restart=1"
    for event in itertools.islice(
        FaultSchedule.parse(spec).events(RandomStreams(7), 3), 32
    ):
        assert 0 <= event.node < 3


def test_explicit_node_out_of_range_rejected_at_resolution():
    schedule = FaultSchedule.parse("crash@1000:node=5")
    with pytest.raises(ValueError):
        list(schedule.events(RandomStreams(0), num_nodes=3))


def test_schedule_uses_dedicated_stream():
    # Resolving a schedule must never touch workload streams: all
    # randomness comes from the faults/schedule stream.
    rng = RandomStreams(3)
    arrivals = rng.stream("arrivals/0")
    before = arrivals.getstate()
    list(itertools.islice(
        FaultSchedule.parse("crash:every=100:jitter=50").events(rng, 3), 10
    ))
    assert arrivals.getstate() == before
    assert SCHEDULE_STREAM in rng._streams
