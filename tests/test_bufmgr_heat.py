"""Unit tests for heat tracking and the global heat registry."""

import pytest

from repro.bufmgr.heat import GlobalHeatRegistry, HeatTracker


def test_unknown_key_has_zero_heat():
    tracker = HeatTracker()
    assert tracker.heat("p", now=10.0) == 0.0


def test_heat_is_accesses_per_time_unit():
    tracker = HeatTracker(k=2)
    tracker.record("p", now=0.0)
    tracker.record("p", now=10.0)
    # 2 accesses over a 10 ms span.
    assert tracker.heat("p", now=10.0) == pytest.approx(0.2)


def test_heat_decays_with_time():
    tracker = HeatTracker(k=2)
    tracker.record("p", now=0.0)
    tracker.record("p", now=10.0)
    early = tracker.heat("p", now=10.0)
    late = tracker.heat("p", now=100.0)
    assert late < early


def test_heat_window_keeps_only_k_newest():
    tracker = HeatTracker(k=2)
    tracker.record("p", now=0.0)
    tracker.record("p", now=100.0)
    tracker.record("p", now=110.0)
    # Span is from t=100 (oldest of the 2 kept) to now.
    assert tracker.heat("p", now=110.0) == pytest.approx(2 / 10)


def test_hot_burst_at_same_instant():
    tracker = HeatTracker(k=2)
    tracker.record("p", now=5.0)
    tracker.record("p", now=5.0)
    assert tracker.heat("p", now=5.0) == 2.0


def test_forget_deletes_bookkeeping():
    tracker = HeatTracker()
    tracker.record("p", now=1.0)
    assert tracker.tracked("p")
    tracker.forget("p")
    assert not tracker.tracked("p")
    assert len(tracker) == 0
    tracker.forget("p")  # idempotent


def test_composite_keys_for_class_heat():
    """§6: class heat is kept per (class, page), created on demand."""
    tracker = HeatTracker(k=2)
    tracker.record((1, 42), now=0.0)
    tracker.record((2, 42), now=0.0)
    tracker.record((1, 42), now=4.0)
    assert tracker.heat((1, 42), now=4.0) == pytest.approx(0.5)
    assert tracker.heat((2, 42), now=4.0) > 0.0
    assert tracker.heat((3, 42), now=4.0) == 0.0


def test_k_must_be_positive():
    with pytest.raises(ValueError):
        HeatTracker(k=0)


def test_global_registry_heat():
    registry = GlobalHeatRegistry(k=2)
    registry.record(7, now=0.0)
    registry.record(7, now=5.0)
    assert registry.heat(7, now=5.0) == pytest.approx(0.4)


def test_global_registry_threshold_updates():
    """Dissemination messages fire once per threshold accesses."""
    updates = []
    registry = GlobalHeatRegistry(
        k=2, on_update=lambda: updates.append(1), update_threshold=3
    )
    for i in range(9):
        registry.record(1, now=float(i))
    assert len(updates) == 3


def test_global_registry_threshold_per_page():
    updates = []
    registry = GlobalHeatRegistry(
        k=2, on_update=lambda: updates.append(1), update_threshold=2
    )
    registry.record(1, now=0.0)
    registry.record(2, now=0.0)
    assert updates == []  # neither page reached its own threshold
    registry.record(1, now=1.0)
    assert len(updates) == 1


def test_global_registry_forget_deletes_bookkeeping():
    registry = GlobalHeatRegistry(k=2, update_threshold=8)
    registry.record(7, now=0.0)
    registry.record(7, now=1.0)
    assert registry.tracked(7)
    assert registry.pending_count == 1
    registry.forget(7)
    assert not registry.tracked(7)
    assert registry.heat(7, now=2.0) == 0.0
    assert registry.pending_count == 0
    assert len(registry) == 0
    registry.forget(7)  # idempotent


def test_global_registry_clear_resets_everything():
    registry = GlobalHeatRegistry(k=2, update_threshold=8)
    for page in range(5):
        registry.record(page, now=float(page))
    assert len(registry) == 5
    registry.clear()
    assert len(registry) == 0
    assert registry.pending_count == 0


def test_global_registry_pending_bounded_by_threshold_cycle():
    """Reaching the threshold removes the page's pending counter."""
    registry = GlobalHeatRegistry(k=2, update_threshold=3)
    for i in range(3):
        registry.record(1, now=float(i))
    # Counter cycled through the threshold: no key left behind.
    assert registry.pending_count == 0
    registry.record(1, now=4.0)
    assert registry.pending_count == 1


def test_default_k2_is_tuple_specialized():
    """k=2 (the system default) uses the flat tuple-pair layout."""
    from repro.bufmgr.heat import _DequeHeatTracker

    assert type(HeatTracker()) is HeatTracker
    assert type(HeatTracker(k=2)) is HeatTracker
    fallback = HeatTracker(k=3)
    assert isinstance(fallback, _DequeHeatTracker)
    assert fallback.k == 3


def test_k3_fallback_keeps_only_three_newest():
    tracker = HeatTracker(k=3)
    for t in (0.0, 100.0, 110.0, 118.0):
        tracker.record("p", now=t)
    # Window is the 3 newest accesses: span from t=100 to now.
    assert tracker.heat("p", now=118.0) == pytest.approx(3 / 18)


def test_k3_fallback_partial_window_and_forget():
    tracker = HeatTracker(k=3)
    tracker.record("p", now=0.0)
    tracker.record("p", now=4.0)
    assert tracker.heat("p", now=4.0) == pytest.approx(0.5)
    tracker.forget("p")
    assert not tracker.tracked("p")
    assert tracker.heat("p", now=5.0) == 0.0
    assert len(tracker) == 0


def test_global_registry_threshold_restarts_after_forget():
    """forget() discards part-way dissemination progress with the page."""
    updates = []
    registry = GlobalHeatRegistry(
        k=2, on_update=lambda: updates.append(1), update_threshold=3
    )
    registry.record(1, now=0.0)
    registry.record(1, now=1.0)
    assert registry.pending_count == 1
    registry.forget(1)
    assert registry.pending_count == 0
    registry.record(1, now=2.0)
    registry.record(1, now=3.0)
    assert updates == []  # counter restarted from zero
    registry.record(1, now=4.0)
    assert len(updates) == 1
    assert registry.pending_count == 0


# -- columnar vs. deque parity and churn boundedness --------------------


def _deque_tracker_k2():
    """A deque-backed tracker at k=2, bypassing ``__new__`` routing."""
    from repro.bufmgr.heat import _DequeHeatTracker

    tracker = object.__new__(_DequeHeatTracker)
    tracker.__init__(k=2)
    return tracker


def test_columnar_matches_deque_tracker_on_random_history():
    import random

    from repro.bufmgr.heat import _DequeHeatTracker

    rng = random.Random(7)
    columnar = HeatTracker(k=2)
    boxed = _deque_tracker_k2()
    assert type(columnar) is HeatTracker
    assert isinstance(boxed, _DequeHeatTracker)
    keys = [f"p{i}" for i in range(40)] + [(1, i) for i in range(10)]
    now = 0.0
    for _ in range(3_000):
        now += rng.expovariate(1.0)
        key = rng.choice(keys)
        op = rng.random()
        if op < 0.70:
            columnar.record(key, now)
            boxed.record(key, now)
        elif op < 0.85:
            columnar.forget(key)
            boxed.forget(key)
        else:
            probe = rng.choice(keys)
            # Bit-identical, not approximately equal: the columnar
            # arithmetic (1/span, 2/span) must reproduce the boxed
            # len/span floats exactly.
            assert columnar.heat(probe, now) == boxed.heat(probe, now)
            assert columnar.tracked(probe) == boxed.tracked(probe)
    for key in keys:
        assert columnar.heat(key, now) == boxed.heat(key, now)
    assert len(columnar) == len(boxed)


def test_columnar_single_access_parity_at_same_instant():
    columnar = HeatTracker(k=2)
    boxed = _deque_tracker_k2()
    for tracker in (columnar, boxed):
        tracker.record("p", now=5.0)
    # span == 0 on both layouts -> len(history) exactly.
    assert columnar.heat("p", 5.0) == boxed.heat("p", 5.0) == 1.0
    for tracker in (columnar, boxed):
        tracker.record("p", now=5.0)
    assert columnar.heat("p", 5.0) == boxed.heat("p", 5.0) == 2.0


def test_tracker_churn_keeps_columns_bounded():
    tracker = HeatTracker(k=2)
    # 50 concurrently live keys, churned through 20k generations.
    for generation in range(20_000):
        key = ("page", generation)
        tracker.record(key, float(generation))
        tracker.record(key, generation + 0.5)
        if generation >= 50:
            tracker.forget(("page", generation - 50))
    assert len(tracker) == 50
    # Columns are bounded by the *peak* live count, not total churn.
    assert tracker.column_slots <= 51


def test_registry_churn_keeps_columns_and_pending_bounded():
    updates = []
    registry = GlobalHeatRegistry(
        on_update=lambda: updates.append(1), update_threshold=8
    )
    for generation in range(10_000):
        registry.record(generation, float(generation))
        registry.record(generation, generation + 0.25)
        if generation >= 64:
            registry.forget(generation - 64)
    assert len(registry) == 64
    assert registry.column_slots <= 65
    # Two accesses per page, threshold 8: every page stays pending and
    # forget reclaims its counter, so pending tracks the live window.
    assert registry.pending_count == 64
    assert not updates


def test_registry_forget_resets_pending_counter():
    registry = GlobalHeatRegistry(update_threshold=4)
    for _ in range(3):
        registry.record(7, 1.0)
    assert registry.pending_count == 1
    registry.forget(7)
    assert registry.pending_count == 0
    assert not registry.tracked(7)
    # Re-tracking the page starts the dissemination count from zero:
    # three more accesses stay below the threshold.
    updates = []
    registry._on_update = lambda: updates.append(1)
    for _ in range(3):
        registry.record(7, 2.0)
    assert not updates
    assert registry.pending_count == 1


def test_tracker_clear_releases_columns():
    tracker = HeatTracker(k=2)
    for i in range(1_000):
        tracker.record(i, float(i))
    assert tracker.column_slots == 1_000
    tracker.clear()
    assert tracker.column_slots == 0
    assert len(tracker) == 0
    tracker.record("fresh", 1.0)
    assert tracker.heat("fresh", 2.0) == 1.0
