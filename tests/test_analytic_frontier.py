"""Unit tests for feasibility-frontier extraction (the prescreen core)."""

import pytest

from repro.analytic.frontier import (
    BINDING,
    INFEASIBLE,
    SLACK,
    pair_grid,
    prescreen_goal_pairs,
    prescreen_goals,
)
from repro.cluster.config import NodeParameters, SystemConfig
from repro.experiments.figure2 import sweep_goals
from repro.experiments.calibration import GoalRange
from repro.experiments.multiclass import (
    doubled_cache_config,
    multiclass_workload,
)
from repro.experiments.runner import default_workload


@pytest.fixture
def quick_system(fast_config):
    return fast_config, default_workload(fast_config)


def test_prescreen_requires_goals(quick_system):
    config, workload = quick_system
    with pytest.raises(ValueError):
        prescreen_goals(config, workload, [])


def test_prescreen_classifies_all_goals(quick_system):
    config, workload = quick_system
    goals = sweep_goals(GoalRange(1, 2.0, 8.0), 200)
    report = prescreen_goals(config, workload, goals)
    assert report.grid_size == 200
    assert all(
        p.regime in (INFEASIBLE, BINDING, SLACK) for p in report.points
    )
    # The quick system's frontier sits inside 2..8 ms: both infeasible
    # and binding goals must appear.
    counts = report.regime_counts()
    assert counts.get(INFEASIBLE, 0) > 0
    assert counts.get(BINDING, 0) > 0


def test_prescreen_regimes_are_goal_monotone(quick_system):
    # Tighter goals are never easier: walking goals upward, infeasible
    # can turn binding and binding can turn slack, never backwards.
    config, workload = quick_system
    goals = sweep_goals(GoalRange(1, 2.0, 8.0), 100)
    report = prescreen_goals(config, workload, goals)
    order = {INFEASIBLE: 0, BINDING: 1, SLACK: 2}
    ranks = [order[p.regime] for p in report.points]
    assert ranks == sorted(ranks)


def test_prescreen_selection_covers_boundaries(quick_system):
    config, workload = quick_system
    goals = sweep_goals(GoalRange(1, 2.0, 8.0), 100)
    report = prescreen_goals(config, workload, goals)
    selected = set(report.selected)
    assert 0 in selected and 99 in selected
    for i in range(1, 100):
        if report.points[i].regime != report.points[i - 1].regime:
            assert {i - 1, i} <= selected
    # Budget: ~5% of the grid, hard-capped at 10%.
    assert report.frontier_size <= 10
    assert report.selected_goals() == sorted(report.selected_goals())


def test_prescreen_budget_cap_scales_with_grid(quick_system):
    config, workload = quick_system
    goals = sweep_goals(GoalRange(1, 2.0, 8.0), 1000)
    report = prescreen_goals(config, workload, goals)
    assert report.frontier_size <= 100
    assert report.solver_ms < 1000.0  # the <1 s acceptance bar
    fields = report.trace_fields()
    assert fields["grid"] == 1000
    assert fields["frontier"] == report.frontier_size
    assert fields["solves"] == report.solves
    assert fields["ms"] > 0


def test_binding_points_carry_minimal_allocation(quick_system):
    config, workload = quick_system
    goals = sweep_goals(GoalRange(1, 2.0, 8.0), 50)
    report = prescreen_goals(config, workload, goals)
    for point in report.points:
        if point.regime == BINDING:
            assert point.dedicated_bytes_per_node > 0
            assert point.predicted_rt_ms <= point.goal_ms
        elif point.regime == INFEASIBLE:
            assert point.dedicated_bytes_per_node is None
            assert point.predicted_rt_ms > point.goal_ms
        else:
            assert point.dedicated_bytes_per_node == 0


# -- goal pairs -------------------------------------------------------


def test_pair_grid_is_row_major_box():
    grid = pair_grid((1.0, 3.0), (10.0, 30.0), 9)
    assert len(grid) == 9
    assert grid[0] == (1.0, 10.0)
    assert grid[-1] == (3.0, 30.0)
    # Row-major: the second axis varies fastest.
    assert grid[1] == (1.0, 20.0)
    with pytest.raises(ValueError):
        pair_grid((1.0, 3.0), (10.0, 30.0), 0)


def test_prescreen_pairs_classifies_and_selects(fast_config):
    config = doubled_cache_config(fast_config)
    workload = multiclass_workload(config, 3.0, 8.0)
    grid = pair_grid((2.0, 6.0), (6.0, 14.0), 64)
    report = prescreen_goal_pairs(config, workload, grid)
    assert report.grid_size == 64
    assert report.shape == (8, 8)
    assert report.frontier_size >= 1
    assert report.frontier_size <= max(report.budget, 2)
    for g1, g2 in report.selected_pairs():
        assert (g1, g2) in grid
    fields = report.trace_fields()
    assert fields["feasible"] + fields["infeasible"] == 64


def test_prescreen_pairs_feasible_iff_some_split_works(fast_config):
    config = doubled_cache_config(fast_config)
    workload = multiclass_workload(config, 3.0, 8.0)
    # An absurdly loose pair must be feasible, an impossible one not.
    report = prescreen_goal_pairs(
        config, workload, [(1e6, 2e6), (1e-6, 2e-6)]
    )
    assert report.points[0].feasible
    assert not report.points[1].feasible
    assert report.points[0].dedicated_bytes_per_node is not None
    assert report.points[1].dedicated_bytes_per_node is None
