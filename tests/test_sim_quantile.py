"""Unit + property tests for the P² streaming quantile estimator."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import P2Quantile


def test_invalid_quantile_rejected():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


def test_empty_estimator_returns_zero():
    assert P2Quantile(0.5).value == 0.0


def test_exact_for_few_samples():
    estimator = P2Quantile(0.5)
    for x in (3.0, 1.0, 2.0):
        estimator.add(x)
    assert estimator.value == 2.0  # exact median of 3 samples


def test_median_of_uniform_stream():
    estimator = P2Quantile(0.5)
    rng = random.Random(1)
    for _ in range(20_000):
        estimator.add(rng.random())
    assert estimator.value == pytest.approx(0.5, abs=0.02)


def test_p95_of_exponential_stream():
    estimator = P2Quantile(0.95)
    rng = random.Random(2)
    samples = [rng.expovariate(1.0) for _ in range(20_000)]
    for x in samples:
        estimator.add(x)
    true_p95 = float(np.percentile(samples, 95))
    assert estimator.value == pytest.approx(true_p95, rel=0.08)


def test_monotone_quantiles():
    rng = random.Random(3)
    samples = [rng.gauss(10.0, 3.0) for _ in range(10_000)]
    estimates = []
    for q in (0.25, 0.5, 0.9):
        estimator = P2Quantile(q)
        for x in samples:
            estimator.add(x)
        estimates.append(estimator.value)
    assert estimates[0] < estimates[1] < estimates[2]


@given(
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=50,
        max_size=400,
    ),
    st.sampled_from([0.25, 0.5, 0.75, 0.9]),
)
@settings(max_examples=60)
def test_property_estimate_within_sample_range(samples, quantile):
    estimator = P2Quantile(quantile)
    for x in samples:
        estimator.add(x)
    assert min(samples) <= estimator.value <= max(samples)
    assert estimator.count == len(samples)
