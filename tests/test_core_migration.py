"""Unit tests for coordinator placement and migration (§5)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.messages import MessageKind
from repro.core.controller import GoalOrientedController
from repro.workload.generator import WorkloadGenerator


def build(fast_config, fast_workload, seed=0, **kwargs):
    cluster = Cluster(fast_config, seed=seed)
    controller = GoalOrientedController(cluster, goals={1: 5.0}, **kwargs)
    generator = WorkloadGenerator(cluster, fast_workload, sink=controller)
    return cluster, controller, generator


def test_migration_changes_home(fast_config, fast_workload):
    cluster, controller, _ = build(fast_config, fast_workload)
    old = controller.coordinator_home[1]
    new = (old + 1) % fast_config.num_nodes
    controller.migrate_coordinator(1, new)
    assert controller.coordinator_home[1] == new
    assert controller.migrations == 1


def test_migration_accounts_messages(fast_config, fast_workload):
    cluster, controller, _ = build(fast_config, fast_workload)
    new = (controller.coordinator_home[1] + 1) % fast_config.num_nodes
    controller.migrate_coordinator(1, new)
    acc = cluster.network.accounting
    # Every node except the new home learns about the move.
    assert acc.messages_by_kind[MessageKind.MIGRATION] == (
        fast_config.num_nodes - 1
    )
    assert acc.messages_by_kind[MessageKind.MIGRATION_STATE] == 1


def test_migration_to_same_home_is_free(fast_config, fast_workload):
    cluster, controller, _ = build(fast_config, fast_workload)
    home = controller.coordinator_home[1]
    controller.migrate_coordinator(1, home)
    assert controller.migrations == 0
    assert cluster.network.accounting.total_bytes == 0


def test_migration_validation(fast_config, fast_workload):
    _, controller, _ = build(fast_config, fast_workload)
    with pytest.raises(KeyError):
        controller.migrate_coordinator(9, 0)
    with pytest.raises(ValueError):
        controller.migrate_coordinator(1, 99)


def test_migration_messages_count_as_control_traffic(
    fast_config, fast_workload
):
    cluster, controller, _ = build(fast_config, fast_workload)
    new = (controller.coordinator_home[1] + 1) % fast_config.num_nodes
    controller.migrate_coordinator(1, new)
    acc = cluster.network.accounting
    assert acc.control_bytes == acc.total_bytes  # nothing else sent yet


def test_feedback_loop_survives_migration(fast_config, fast_workload):
    cluster, controller, generator = build(fast_config, fast_workload)
    generator.start()
    controller.start()
    cluster.env.run(until=3 * fast_config.observation_interval_ms + 1)
    controller.migrate_coordinator(
        1, (controller.coordinator_home[1] + 1) % fast_config.num_nodes
    )
    cluster.env.run(until=8 * fast_config.observation_interval_ms + 1)
    # The loop keeps running and the coordinator keeps its state.
    assert controller.interval_index == 8
    assert len(controller.coordinators[1].window) > 0


def test_auto_balance_moves_coordinator_off_busy_node(
    fast_config, fast_workload
):
    cluster, controller, generator = build(
        fast_config, fast_workload, auto_balance=True
    )
    # Pin all coordinators to node 0 and make node 0 very busy.
    controller.coordinator_home[1] = 0

    def hog():
        while True:
            yield from cluster.nodes[0].cpu.consume(1_000_000)

    cluster.env.process(hog())
    generator.start()
    controller.start()
    cluster.env.run(until=4 * fast_config.observation_interval_ms + 1)
    assert controller.coordinator_home[1] != 0
    assert controller.migrations >= 1
