"""Unit + property tests for the incremental Gauss independence tracker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.gauss import IndependenceTracker, select_independent


def test_first_nonzero_vector_accepted():
    tracker = IndependenceTracker(3)
    assert tracker.add([1.0, 0.0, 0.0])
    assert tracker.rank == 1


def test_zero_vector_rejected():
    tracker = IndependenceTracker(3)
    assert not tracker.add([0.0, 0.0, 0.0])
    assert not tracker.is_independent([0.0, 0.0, 0.0])


def test_scalar_multiple_rejected():
    tracker = IndependenceTracker(3)
    tracker.add([1.0, 2.0, 3.0])
    assert not tracker.is_independent([2.0, 4.0, 6.0])
    assert not tracker.add([-0.5, -1.0, -1.5])


def test_linear_combination_rejected():
    tracker = IndependenceTracker(3)
    tracker.add([1.0, 0.0, 0.0])
    tracker.add([0.0, 1.0, 0.0])
    assert not tracker.is_independent([3.0, -2.0, 0.0])
    assert tracker.is_independent([0.0, 0.0, 1.0])


def test_full_rank_rejects_everything():
    tracker = IndependenceTracker(2)
    tracker.add([1.0, 0.0])
    tracker.add([0.0, 1.0])
    assert tracker.full
    assert not tracker.add([1.0, 1.0])
    assert not tracker.is_independent([5.0, -7.0])


def test_wrong_shape_rejected():
    tracker = IndependenceTracker(3)
    with pytest.raises(ValueError):
        tracker.residual([1.0, 2.0])


def test_nearly_dependent_rejected():
    """Vectors dependent up to tiny noise must be treated as dependent."""
    tracker = IndependenceTracker(2, rtol=1e-6)
    tracker.add([1.0, 1.0])
    assert not tracker.is_independent([1.0 + 1e-12, 1.0])


def test_copy_is_independent_object():
    tracker = IndependenceTracker(2)
    tracker.add([1.0, 0.0])
    clone = tracker.copy()
    clone.add([0.0, 1.0])
    assert tracker.rank == 1
    assert clone.rank == 2


@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 12), st.integers(1, 6)),
        # Well-scaled entries: avoid sub-tolerance magnitudes where our
        # relative tolerance and numpy's absolute one legitimately
        # disagree about what counts as zero.
        elements=st.floats(-100, 100, allow_nan=False).map(
            lambda x: 0.0 if abs(x) < 1e-3 else x
        ),
    )
)
@settings(max_examples=100)
def test_property_rank_matches_numpy(matrix):
    """Tracker rank == numpy matrix_rank of the accepted vectors, and
    accepted count == numpy rank of all offered vectors."""
    n_vectors, dim = matrix.shape
    tracker = IndependenceTracker(dim, rtol=1e-9)
    accepted = []
    for row in matrix:
        if tracker.add(row):
            accepted.append(row)
    np_rank = np.linalg.matrix_rank(matrix, tol=1e-6)
    assert tracker.rank == len(accepted)
    # The greedy tracker accepts exactly rank-many vectors (up to
    # borderline numerical cases which the tolerance settings avoid
    # for these well-scaled inputs).
    assert tracker.rank == np_rank
    if accepted:
        assert np.linalg.matrix_rank(np.array(accepted)) == len(accepted)


def test_select_independent_prefers_newest():
    reference = np.array([0.0, 0.0])
    candidates = [
        np.array([1.0, 0.0]),   # newest
        np.array([2.0, 0.0]),   # dependent on the first difference
        np.array([0.0, 1.0]),   # independent
        np.array([5.0, 5.0]),   # dependent once two are chosen
    ]
    chosen = select_independent(reference, candidates)
    assert chosen == [0, 2]


def test_select_independent_respects_limit():
    reference = np.zeros(3)
    candidates = [np.eye(3)[i] for i in range(3)]
    assert select_independent(reference, candidates, limit=2) == [0, 1]


def test_select_independent_skips_duplicates_of_reference():
    reference = np.array([1.0, 1.0])
    candidates = [np.array([1.0, 1.0]), np.array([2.0, 1.0])]
    assert select_independent(reference, candidates) == [1]
