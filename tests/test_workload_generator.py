"""Integration tests for the workload generator."""

import pytest

from repro.cluster.cluster import Cluster
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import ClassSpec, WorkloadSpec


class RecordingSink:
    def __init__(self):
        self.arrivals = []
        self.completions = []

    def on_arrival(self, node_id, class_id, now):
        self.arrivals.append((node_id, class_id, now))

    def on_complete(self, node_id, class_id, response_ms, now):
        self.completions.append((node_id, class_id, response_ms, now))


def build(fast_config, fast_workload, seed=0):
    cluster = Cluster(fast_config, seed=seed)
    sink = RecordingSink()
    generator = WorkloadGenerator(cluster, fast_workload, sink=sink)
    return cluster, generator, sink


def test_operations_arrive_on_every_node_and_class(
    fast_config, fast_workload
):
    cluster, generator, sink = build(fast_config, fast_workload)
    generator.start()
    cluster.env.run(until=20_000.0)
    seen = {(n, c) for n, c, _ in sink.arrivals}
    expected = {
        (n, c.class_id)
        for n in range(fast_config.num_nodes)
        for c in fast_workload.classes
    }
    assert seen == expected


def test_arrival_rate_close_to_spec(fast_config, fast_workload):
    cluster, generator, sink = build(fast_config, fast_workload)
    generator.start()
    horizon = 100_000.0
    cluster.env.run(until=horizon)
    per_node_class = {}
    for node_id, class_id, _ in sink.arrivals:
        key = (node_id, class_id)
        per_node_class[key] = per_node_class.get(key, 0) + 1
    for (node_id, class_id), count in per_node_class.items():
        spec = fast_workload.spec_for(class_id)
        expected = spec.arrival_rate_per_node * horizon
        assert count == pytest.approx(expected, rel=0.25)


def test_completions_have_positive_response_times(
    fast_config, fast_workload
):
    cluster, generator, sink = build(fast_config, fast_workload)
    generator.start()
    cluster.env.run(until=20_000.0)
    assert sink.completions
    assert all(rt > 0 for _, _, rt, _ in sink.completions)


def test_operations_access_only_class_pages(fast_config):
    pages = tuple(range(10))
    workload = WorkloadSpec(classes=[
        ClassSpec(class_id=1, goal_ms=5.0, pages=pages,
                  pages_per_op=2, arrival_rate_per_node=0.01),
    ])
    cluster = Cluster(fast_config, seed=1)
    generator = WorkloadGenerator(cluster, workload)
    generator.start()
    cluster.env.run(until=30_000.0)
    touched = {
        p for p in range(fast_config.num_pages)
        if cluster.directory.cached_anywhere(p)
    }
    assert touched <= set(pages)
    assert touched  # something was accessed


def test_generator_is_deterministic(fast_config, fast_workload):
    _, gen_a, sink_a = build(fast_config, fast_workload, seed=5)
    _, gen_b, sink_b = build(fast_config, fast_workload, seed=5)
    gen_a.cluster.env is not gen_b.cluster.env
    gen_a.start()
    gen_b.start()
    gen_a.cluster.env.run(until=10_000.0)
    gen_b.cluster.env.run(until=10_000.0)
    assert sink_a.arrivals == sink_b.arrivals
    assert sink_a.completions == sink_b.completions


def test_counters_track_progress(fast_config, fast_workload):
    cluster, generator, _ = build(fast_config, fast_workload)
    generator.start()
    cluster.env.run(until=20_000.0)
    assert generator.operations_started >= generator.operations_completed
    assert generator.operations_completed > 0
