"""Integration tests for the cluster's data-shipping page access path."""

import pytest

from repro.bufmgr.costs import AccessLevel
from repro.cluster.cluster import Cluster
from repro.cluster.config import NodeParameters, SystemConfig


@pytest.fixture
def small_cluster():
    config = SystemConfig(
        num_nodes=3,
        num_pages=60,
        node=NodeParameters(buffer_bytes=16 * 4096),
    )
    return Cluster(config, seed=0)


def _access(cluster, node_id, page_id, class_id=0):
    result = {}

    def proc():
        level = yield from cluster.access_page(node_id, page_id, class_id)
        result["level"] = level

    cluster.env.process(proc())
    cluster.env.run()
    return result["level"]


def test_first_access_goes_to_disk(small_cluster):
    assert _access(small_cluster, 0, 0) is AccessLevel.DISK


def test_second_access_same_node_is_local(small_cluster):
    _access(small_cluster, 0, 0)
    assert _access(small_cluster, 0, 0) is AccessLevel.LOCAL


def test_access_from_other_node_is_remote(small_cluster):
    _access(small_cluster, 0, 5)
    assert _access(small_cluster, 1, 5) is AccessLevel.REMOTE


def test_remote_copy_registers_both_nodes(small_cluster):
    _access(small_cluster, 0, 5)
    _access(small_cluster, 1, 5)
    assert small_cluster.directory.holders(5) == {0, 1}


def test_home_local_disk_read_skips_network(small_cluster):
    # Page 0 is homed at node 0 (round robin): no page traffic, only
    # the directory registration bytes.
    from repro.cluster.messages import MessageKind

    _access(small_cluster, 0, 0)
    acc = small_cluster.network.accounting
    assert MessageKind.PAGE_REQUEST not in acc.messages_by_kind
    assert MessageKind.PAGE_SHIP not in acc.messages_by_kind


def test_remote_home_disk_read_ships_page(small_cluster):
    # Page 1 is homed at node 1; access from node 0 must ship it.
    _access(small_cluster, 0, 1)
    acc = small_cluster.network.accounting
    from repro.cluster.messages import MessageKind

    assert acc.messages_by_kind[MessageKind.PAGE_REQUEST] >= 1
    assert acc.messages_by_kind[MessageKind.PAGE_SHIP] >= 1


def test_cost_observer_learns_ordering(small_cluster):
    _access(small_cluster, 0, 0)    # disk
    _access(small_cluster, 0, 0)    # local
    _access(small_cluster, 1, 0)    # remote
    costs = small_cluster.costs
    assert costs.observations(AccessLevel.DISK) == 1
    assert costs.observations(AccessLevel.LOCAL) == 1
    assert costs.observations(AccessLevel.REMOTE) == 1
    assert (
        costs.cost(AccessLevel.LOCAL)
        < costs.cost(AccessLevel.REMOTE)
        < costs.cost(AccessLevel.DISK)
    )


def test_eviction_unregisters_from_directory(small_cluster):
    # Fill node 0's 16-frame buffer beyond capacity.
    for page in range(0, 60, 3):  # pages homed at node 0
        _access(small_cluster, 0, page)
    cached = sum(
        1 for p in range(60)
        if 0 in small_cluster.directory.holders(p)
    )
    assert cached == 16  # directory mirrors the buffer content exactly
    manager = small_cluster.nodes[0].buffers
    for page in range(60):
        holds = 0 in small_cluster.directory.holders(page)
        assert holds == manager.contains(page)


def test_apply_allocation_grants_and_reports(small_cluster):
    granted = small_cluster.apply_allocation(1, [8 * 4096] * 3)
    assert granted == [8 * 4096] * 3
    assert small_cluster.total_dedicated_bytes(1) == 3 * 8 * 4096


def test_apply_allocation_conflict_grants_partial(small_cluster):
    small_cluster.apply_allocation(1, [12 * 4096] * 3)
    granted = small_cluster.apply_allocation(2, [8 * 4096] * 3)
    assert granted == [4 * 4096] * 3  # only 4 frames left per node


def test_apply_allocation_wrong_length_rejected(small_cluster):
    with pytest.raises(ValueError):
        small_cluster.apply_allocation(1, [4096])


def test_remote_fetch_falls_back_to_disk_if_evicted(small_cluster):
    """A page evicted mid-flight must be re-read from its home disk."""
    _access(small_cluster, 0, 5)
    # Forcibly drop the copy from node 0 (simulates in-flight eviction).
    small_cluster.nodes[0].buffers.pool(0).remove(5)
    small_cluster.nodes[0].buffers._where.pop(5, None)
    # Directory still thinks node 0 holds it.
    assert small_cluster.directory.remote_holder(5, 1) == 0
    assert _access(small_cluster, 1, 5) is AccessLevel.DISK
