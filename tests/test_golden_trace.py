"""Kernel-equivalence golden test.

Replays the pinned figure2 configuration and asserts the generated
operation trace is event-for-event identical to the checked-in golden
file, which was recorded with the pre-fast-path kernel.  Any change to
event ordering, RNG stream consumption, or sampler draw counts shows up
here as a hard failure (see ``tests/golden_trace.py`` for the
regeneration policy).
"""

import os

from repro.workload.trace import TraceRecorder

from tests.golden_trace import GOLDEN_PATH, generate_trace


def test_golden_file_exists():
    assert os.path.exists(GOLDEN_PATH), (
        "golden trace missing — run: PYTHONPATH=src python -m tests.golden_trace"
    )


def test_kernel_reproduces_golden_trace():
    golden = TraceRecorder.load(GOLDEN_PATH).records
    fresh = generate_trace().records
    assert len(fresh) == len(golden)
    for i, (a, b) in enumerate(zip(fresh, golden)):
        assert a == b, (
            f"trace diverges at record {i}: got {a}, golden {b}"
        )


def test_calendar_scheduler_reproduces_golden_trace(monkeypatch):
    """The calendar backend replays the golden run bit-identically.

    Forcing a tiny auto-migration threshold makes the kernel switch to
    the calendar queue moments into the warm-up, so the entire pinned
    figure2 run — RNG draws, victim choices, message interleavings —
    is scheduled by the calendar backend and must still match the
    heap-recorded golden file exactly.
    """
    import repro.sim.engine as engine

    monkeypatch.setattr(engine, "CALENDAR_AUTO_THRESHOLD", 8)
    golden = TraceRecorder.load(GOLDEN_PATH).records
    fresh = generate_trace().records
    assert len(fresh) == len(golden)
    for i, (a, b) in enumerate(zip(fresh, golden)):
        assert a == b, (
            f"calendar trace diverges at record {i}: got {a}, golden {b}"
        )
