"""Unit tests for the database home mapping."""

import pytest

from repro.cluster.database import Database


def test_round_robin_homes():
    db = Database(num_pages=10, page_size=4096, num_nodes=3)
    assert [db.home(p) for p in range(6)] == [0, 1, 2, 0, 1, 2]


def test_every_page_has_exactly_one_home():
    db = Database(num_pages=100, page_size=4096, num_nodes=4)
    owned = [db.pages_homed_at(n) for n in range(4)]
    flat = sorted(p for pages in owned for p in pages)
    assert flat == list(range(100))


def test_round_robin_is_balanced():
    db = Database(num_pages=99, page_size=4096, num_nodes=3)
    counts = [len(db.pages_homed_at(n)) for n in range(3)]
    assert counts == [33, 33, 33]


def test_hash_placement_covers_all_nodes():
    db = Database(num_pages=1000, page_size=4096, num_nodes=5,
                  placement="hash")
    counts = [len(db.pages_homed_at(n)) for n in range(5)]
    assert sum(counts) == 1000
    # A reasonable hash spreads within ~3x of the mean.
    assert min(counts) > 0
    assert max(counts) < 3 * 200


def test_hash_placement_deterministic():
    a = Database(num_pages=50, page_size=4096, num_nodes=3, placement="hash")
    b = Database(num_pages=50, page_size=4096, num_nodes=3, placement="hash")
    assert [a.home(p) for p in range(50)] == [b.home(p) for p in range(50)]


def test_page_out_of_range_rejected():
    db = Database(num_pages=10, page_size=4096, num_nodes=2)
    with pytest.raises(ValueError):
        db.home(10)
    with pytest.raises(ValueError):
        db.home(-1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_pages": 0, "page_size": 4096, "num_nodes": 1},
        {"num_pages": 10, "page_size": 4096, "num_nodes": 0},
        {"num_pages": 10, "page_size": 4096, "num_nodes": 1,
         "placement": "magic"},
    ],
)
def test_invalid_database_rejected(kwargs):
    with pytest.raises(ValueError):
        Database(**kwargs)
