"""Unit tests for the adaptive goal tolerance."""

import pytest

from repro.core.tolerance import GoalTolerance


def test_uncalibrated_uses_relative_floor():
    tol = GoalTolerance(relative_floor=0.1)
    assert not tol.calibrated
    assert tol.tolerance(goal_ms=10.0) == pytest.approx(1.0)


def test_calibration_needs_min_samples():
    tol = GoalTolerance(min_samples=3)
    tol.record_stable_interval(10.0)
    tol.record_stable_interval(10.5)
    assert not tol.calibrated
    tol.record_stable_interval(9.5)
    assert tol.calibrated


def test_calibrated_band_reflects_variance():
    noisy = GoalTolerance(relative_floor=0.0, min_samples=3)
    steady = GoalTolerance(relative_floor=0.0, min_samples=3)
    for x in (5.0, 15.0, 10.0, 20.0, 0.0):
        noisy.record_stable_interval(x)
    for x in (10.0, 10.1, 9.9, 10.0, 10.0):
        steady.record_stable_interval(x)
    assert noisy.tolerance(10.0) > steady.tolerance(10.0)


def test_floor_dominates_tiny_variance():
    tol = GoalTolerance(relative_floor=0.1, min_samples=2)
    for _ in range(5):
        tol.record_stable_interval(10.0)
    assert tol.tolerance(10.0) == pytest.approx(1.0)


def test_reset_discards_calibration():
    tol = GoalTolerance(min_samples=2)
    tol.record_stable_interval(1.0)
    tol.record_stable_interval(2.0)
    assert tol.calibrated
    tol.reset()
    assert not tol.calibrated


def test_sample_window_bounded():
    tol = GoalTolerance(max_samples=5)
    for i in range(20):
        tol.record_stable_interval(float(i))
    assert len(tol._samples) == 5


def test_violation_above_goal():
    tol = GoalTolerance(relative_floor=0.1)
    assert not tol.violated(observed_ms=10.5, goal_ms=10.0)
    assert tol.violated(observed_ms=11.5, goal_ms=10.0)


def test_violation_below_goal_uses_wider_band():
    tol = GoalTolerance(relative_floor=0.1, low_side_slack=0.3)
    # 10 % band above, 30 % band below.
    assert not tol.violated(observed_ms=7.5, goal_ms=10.0)
    assert tol.violated(observed_ms=6.5, goal_ms=10.0)


def test_exact_goal_never_violated():
    tol = GoalTolerance()
    assert not tol.violated(observed_ms=10.0, goal_ms=10.0)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"relative_floor": -0.1},
        {"low_side_slack": -0.1},
        {"min_samples": 1},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        GoalTolerance(**kwargs)
