"""End-to-end integration tests on the scaled-down configuration.

These exercise the full stack — workload -> cluster -> buffer managers
-> agents -> coordinator -> LP -> allocation — and assert the paper's
qualitative behaviours (convergence to the goal, memory give-back,
Example 2 sharing effect) rather than absolute numbers.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.controller import GoalOrientedController
from repro.experiments.calibration import measure_static_rt
from repro.experiments.runner import Simulation, default_workload
from repro.workload.generator import WorkloadGenerator


def steady_rt(fast_config, workload, fraction, seed=3):
    return measure_static_rt(
        workload, 1, fraction, fast_config, seed=seed,
        warmup_ms=20_000, measure_ms=40_000,
    )


def test_controller_reaches_an_achievable_goal(fast_config):
    workload = default_workload(fast_config)
    # Pick a goal in the middle of the reachable band.
    rt_lo = steady_rt(fast_config, workload, 5 / 6)
    rt_hi = steady_rt(fast_config, workload, 1 / 4)
    goal = 0.5 * (rt_lo + rt_hi)
    workload = workload.with_goal(1, goal)
    sim = Simulation(
        config=fast_config, workload=workload, seed=7,
        warmup_ms=10_000.0,
    )
    sim.run(intervals=50)
    satisfied = sim.satisfied(1)
    assert any(satisfied), (
        f"goal {goal:.2f} ms never satisfied; last RTs "
        f"{sim.controller.series[1].observed_rt.values[-5:]}"
    )
    # Once reached, the controller should keep finding satisfying
    # partitions regularly (not a one-off fluke).
    first = satisfied.index(True)
    tail = satisfied[first:]
    assert sum(tail) / len(tail) > 0.3


def test_memory_given_back_when_goal_relaxed(fast_config):
    workload = default_workload(fast_config)
    rt_lo = steady_rt(fast_config, workload, 5 / 6)
    rt_hi = steady_rt(fast_config, workload, 1 / 4)
    tight = rt_lo + 0.25 * (rt_hi - rt_lo)
    loose = rt_lo + 0.9 * (rt_hi - rt_lo)
    workload = workload.with_goal(1, tight)
    sim = Simulation(
        config=fast_config, workload=workload, seed=11,
        warmup_ms=10_000.0,
    )
    sim.run(intervals=40)
    dedicated_tight = sim.dedicated_bytes(1)
    sim.controller.set_goal(1, loose)
    sim.run(intervals=40)
    dedicated_loose = sim.dedicated_bytes(1)
    assert dedicated_loose < dedicated_tight


def test_response_time_anticorrelates_with_memory(fast_config):
    """Figure 2's core visual: RT tracks dedicated memory inversely."""
    workload = default_workload(fast_config)
    cluster = Cluster(fast_config, seed=5)
    controller = GoalOrientedController(cluster, goals={1: 4.0})
    generator = WorkloadGenerator(cluster, workload, sink=controller)
    generator.start()
    cluster.env.run(until=10_000)
    controller.start()

    rts = []
    deds = []

    def record(ctrl, idx):
        series = ctrl.series[1]
        if series.observed_rt.values:
            rts.append(series.observed_rt.values[-1])
            deds.append(series.dedicated_bytes.values[-1])

    controller.on_interval(record)
    # Force the allocation through its range by toggling the goal.
    for goal in (2.0, 20.0, 2.0, 20.0):
        controller.set_goal(1, goal)
        cluster.env.run(
            until=cluster.env.now
            + 10 * fast_config.observation_interval_ms
        )
    n = len(rts)
    assert n > 20
    mean_rt = sum(rts) / n
    mean_ded = sum(deds) / n
    cov = sum(
        (rt - mean_rt) * (ded - mean_ded) for rt, ded in zip(rts, deds)
    )
    assert cov < 0  # inverse relationship


def test_two_goal_classes_with_sharing_shrink_k2(fast_config):
    """§7.4 / Example 2: under full sharing, class 2 lives off class 1's
    dedicated buffer and needs (almost) none of its own."""
    from repro.experiments.multiclass import multiclass_workload
    from dataclasses import replace
    from repro.cluster.config import NodeParameters

    config = replace(
        fast_config,
        node=NodeParameters(buffer_bytes=2 * fast_config.node.buffer_bytes),
    )

    def tail_dedicated(sharing, seed=13):
        workload = multiclass_workload(
            config, goal1_ms=4.0, goal2_ms=12.0, sharing=sharing
        )
        sim = Simulation(
            config=config, workload=workload, seed=seed,
            warmup_ms=10_000.0,
        )
        sim.run(intervals=40)
        values = sim.controller.series[2].dedicated_bytes.values[-10:]
        return sum(values) / len(values)

    ded_disjoint = tail_dedicated(0.0)
    ded_shared = tail_dedicated(1.0)
    assert ded_shared < ded_disjoint


def test_full_run_is_reproducible(fast_config):
    workload = default_workload(fast_config)

    def run(seed):
        sim = Simulation(
            config=fast_config, workload=workload, seed=seed,
            warmup_ms=5_000.0,
        )
        sim.run(intervals=15)
        return (
            tuple(sim.controller.series[1].observed_rt.values),
            tuple(sim.controller.series[1].dedicated_bytes.values),
        )

    assert run(21) == run(21)
    assert run(21) != run(22)
