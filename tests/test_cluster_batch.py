"""Batched access path equivalence: ``access_run`` vs. ``access_page``.

The batched entry point executes a run of same-node/same-class accesses
in one generator frame.  It must be *event-identical* to the reference
loop of per-page ``access_page`` calls: same simulated clock at every
completion, same kernel sequence numbers, same directory/accounting/
cost-observer state.  These tests drive both implementations over the
same schedules — including concurrent operations contending for CPUs,
disks, and the network — and require bit-equal end states.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import NodeParameters, SystemConfig


def _config(num_nodes=4, num_pages=200):
    return SystemConfig(
        num_nodes=num_nodes,
        num_pages=num_pages,
        node=NodeParameters(buffer_bytes=128 * 1024),
    )


def _schedule(num_nodes, num_pages, ops=120):
    """Deterministic operation list: (node, class, [pages])."""
    schedule = []
    for i in range(ops):
        node = (i * 5) % num_nodes
        pages = [
            (i * 7 + j * 31) % num_pages for j in range(1 + i % 4)
        ]
        schedule.append((node, i % 3, pages))
    return schedule


def _fingerprint(cluster):
    acct = cluster.network.accounting
    return {
        "now": cluster.env.now,
        "seq": cluster.env._seq,
        "bytes": {
            kind.value: n for kind, n in sorted(
                acct.bytes_by_kind.items(), key=lambda kv: kv[0].value
            )
        },
        "messages": {
            kind.value: n for kind, n in sorted(
                acct.messages_by_kind.items(), key=lambda kv: kv[0].value
            )
        },
        "costs": (
            cluster.costs.cost_local,
            cluster.costs.cost_remote,
            cluster.costs.cost_disk,
            cluster.costs.version,
        ),
        "cached": sorted(
            (node.node_id, page)
            for node in cluster.nodes
            for page in node.buffers.cached_pages()
        ),
        "hits": [
            dict(node.buffers.hits_by_class) for node in cluster.nodes
        ],
        "misses": [
            dict(node.buffers.misses_by_class) for node in cluster.nodes
        ],
        "global_heat": (
            len(cluster.global_heat),
            cluster.global_heat.pending_count,
        ),
    }


def _run_reference(schedule, **kwargs):
    cluster = Cluster(_config(**kwargs), seed=3)
    completions = []

    def op(node_id, class_id, pages):
        for page_id in pages:
            yield from cluster.access_page(node_id, page_id, class_id)
        completions.append(cluster.env.now)

    def driver():
        for node_id, class_id, pages in schedule:
            cluster.env.process(op(node_id, class_id, pages))
            yield cluster.env.timeout(0.11)

    cluster.env.process(driver())
    cluster.env.run()
    return _fingerprint(cluster), completions


def _run_batched(schedule, **kwargs):
    cluster = Cluster(_config(**kwargs), seed=3)
    completions = []

    def op(node_id, class_id, pages):
        yield from cluster.access_run(node_id, pages, class_id)
        completions.append(cluster.env.now)

    def driver():
        for node_id, class_id, pages in schedule:
            cluster.env.process(op(node_id, class_id, pages))
            yield cluster.env.timeout(0.11)

    cluster.env.process(driver())
    cluster.env.run()
    return _fingerprint(cluster), completions


def test_batched_run_is_event_identical_to_page_loop():
    schedule = _schedule(4, 200)
    ref_state, ref_completions = _run_reference(schedule)
    batch_state, batch_completions = _run_batched(schedule)
    assert batch_completions == ref_completions
    assert batch_state == ref_state


def test_batched_run_parity_under_contention():
    # Two nodes over few pages: heavy CPU/disk/network contention, so
    # the fast acquire path and the queued occupy fallback both run.
    schedule = _schedule(2, 40, ops=200)
    ref_state, ref_completions = _run_reference(
        schedule, num_nodes=2, num_pages=40
    )
    batch_state, batch_completions = _run_batched(
        schedule, num_nodes=2, num_pages=40
    )
    assert batch_completions == ref_completions
    assert batch_state == ref_state


def test_batched_run_parity_with_dedicated_pools():
    schedule = _schedule(3, 120, ops=150)

    def with_pools(runner):
        cluster = Cluster(_config(num_nodes=3, num_pages=120), seed=9)
        # Dedicated buffers for classes 1 and 2 exercise the §6
        # promotion branches inside probe/admit.
        cluster.apply_allocation(1, [32 * 1024] * 3)
        cluster.apply_allocation(2, [16 * 1024] * 3)
        completions = []

        def op(node_id, class_id, pages):
            yield from runner(cluster, node_id, class_id, pages)
            completions.append(cluster.env.now)

        def driver():
            for node_id, class_id, pages in schedule:
                cluster.env.process(op(node_id, class_id, pages))
                yield cluster.env.timeout(0.17)

        cluster.env.process(driver())
        cluster.env.run()
        return _fingerprint(cluster), completions

    def page_loop(cluster, node_id, class_id, pages):
        for page_id in pages:
            yield from cluster.access_page(node_id, page_id, class_id)

    def batched(cluster, node_id, class_id, pages):
        yield from cluster.access_run(node_id, pages, class_id)

    assert with_pools(batched) == with_pools(page_loop)


def test_empty_run_is_a_no_op():
    cluster = Cluster(_config(), seed=0)

    def driver():
        yield from cluster.access_run(0, [], 0)

    cluster.env.process(driver())
    cluster.env.run()
    assert cluster.env.now == 0.0
    assert all(
        not node.buffers.cached_pages() for node in cluster.nodes
    )


def test_workload_generator_routes_through_batched_path(monkeypatch):
    """The open-system generator feeds operations through access_run."""
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.spec import ClassSpec, WorkloadSpec

    cluster = Cluster(_config(), seed=1)
    calls = []
    original = cluster.access_run

    def spy(node_id, pages, class_id):
        calls.append((node_id, tuple(pages), class_id))
        return original(node_id, pages, class_id)

    monkeypatch.setattr(cluster, "access_run", spy)
    spec = WorkloadSpec(classes=[
        ClassSpec(
            class_id=1, goal_ms=10.0, pages=tuple(range(100)),
            arrival_rate_per_node=0.4, pages_per_op=3,
        ),
    ])
    generator = WorkloadGenerator(cluster, spec)
    generator.start()
    cluster.env.run(until=50.0)
    assert calls, "no operations ran through the batched path"
    assert all(len(pages) == 3 for _, pages, _ in calls)
