"""Tests for the failure-aware parts of the feedback loop.

Covers measure point invalidation after topology events, the
coordinator's tolerance of degenerate report sets (idle classes in a
fault window), and the ack/timeout/one-retry allocation protocol whose
unresolved conflicts fold into the next interval (§5).
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.agent import AgentReport
from repro.core.controller import GoalOrientedController
from repro.core.coordinator import Coordinator, CoordinatorDecision
from repro.core.measure import MeasureWindow
from repro.experiments.runner import Simulation

PAGE = 4096


def _report(node_id, completions=5, rate=0.01, rt=10.0, time=100.0):
    return AgentReport(
        node_id=node_id, class_id=1, arrivals=completions,
        completions=completions, mean_response_ms=rt,
        arrival_rate=rate, time=time,
    )


# -- measure point invalidation ----------------------------------------


def test_invalidate_before_drops_only_older_points():
    window = MeasureWindow(num_nodes=2)
    window.observe([PAGE, PAGE], 10.0, 1.0, time=100.0)
    window.observe([2 * PAGE, PAGE], 9.0, 1.0, time=200.0)
    window.observe([2 * PAGE, 2 * PAGE], 8.0, 1.0, time=300.0)
    assert window.invalidate_before(250.0) == 2
    assert len(window) == 1
    assert window.newest.time == 300.0
    assert window.invalidate_before(250.0) == 0


def test_coordinator_restart_forgets_precrash_state():
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    coordinator.window.observe([PAGE] * 3, 10.0, 1.0, time=100.0)
    coordinator.window.observe([2 * PAGE, PAGE, PAGE], 9.0, 1.0, time=200.0)
    coordinator.receive_goal_report(_report(0))
    coordinator.receive_goal_report(_report(1))
    coordinator.receive_nogoal_report(_report(0))
    coordinator.receive_hit_info(0, 5, 5)

    coordinator.on_node_restart(0, now=250.0)

    assert coordinator.invalidated_points == 2
    assert coordinator.restarts_seen == 1
    assert 0 not in coordinator.goal_reports
    assert 1 in coordinator.goal_reports  # other nodes keep reporting
    assert 0 not in coordinator.nogoal_reports
    assert 0 not in coordinator.hit_info
    assert len(coordinator.window) == 0


# -- degenerate report sets (satellite: idle class in fault window) ----


def test_evaluate_with_zero_rate_completions_returns_none():
    # Completions exist but every retained report saw zero arrivals
    # (the operations arrived in an earlier interval): eq. 4 would
    # degenerate to an observed RT of 0.0 and trigger a bogus
    # below-goal repartitioning.  The coordinator must skip instead.
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    coordinator.receive_goal_report(_report(0, completions=3, rate=0.0))
    coordinator.receive_goal_report(_report(2, completions=1, rate=0.0))
    decision = coordinator.evaluate(100.0, [0, 0, 0])
    assert decision.observed_rt is None
    assert decision.satisfied
    assert decision.new_allocation is None


def test_evaluate_with_no_reports_at_all_is_satisfied():
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    decision = coordinator.evaluate(100.0, [0, 0, 0])
    assert decision.observed_rt is None
    assert decision.satisfied


def test_one_live_report_is_enough_to_evaluate():
    coordinator = Coordinator(
        class_id=1, node_sizes=[64 * PAGE] * 3, goal_ms=5.0
    )
    coordinator.receive_goal_report(_report(0, rate=0.0))
    coordinator.receive_goal_report(_report(1, rate=0.02, rt=12.0))
    decision = coordinator.evaluate(100.0, [0, 0, 0])
    assert decision.observed_rt == pytest.approx(12.0)


# -- ack/timeout/one-retry allocation shipping -------------------------


def _controller(fast_config):
    cluster = Cluster(fast_config, seed=0)
    controller = GoalOrientedController(cluster, {1: 5.0})
    return cluster, controller, controller.coordinators[1]


def _script_network(network, outcomes):
    """Replace send_control with a scripted drop sequence."""
    outcomes = iter(outcomes)

    def send_control(kind, page_size=0):
        return next(outcomes)

    network.send_control = send_control


def _decision(nbytes):
    return CoordinatorDecision(
        observed_rt=10.0, observed_nogoal_rt=None, satisfied=False,
        new_allocation=np.array([float(nbytes)] * 3),
    )


def test_apply_clean_delivery_updates_belief_everywhere(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    _script_network(cluster.network, [True] * 4)  # 2 remote exchanges
    controller._apply(1, coordinator, _decision(8 * PAGE))
    assert cluster.dedicated_bytes(1) == [8 * PAGE] * 3
    assert list(coordinator.current_allocation) == [8 * PAGE] * 3
    assert controller.allocation_retries == 0
    assert controller.allocation_unconfirmed == 0


def test_apply_lost_exchange_keeps_old_allocation(fast_config):
    # Node 0 (remote; coordinator home is node 1): ALLOCATION lost,
    # retry lost -> the node never applies, the coordinator keeps its
    # previous belief, and the conflict folds into the next interval.
    cluster, controller, coordinator = _controller(fast_config)
    _script_network(
        cluster.network,
        [False, False,  # node 0: both copies lost
         True, True],   # node 2: delivered + acked
    )
    controller._apply(1, coordinator, _decision(8 * PAGE))
    assert cluster.dedicated_bytes(1) == [0, 8 * PAGE, 8 * PAGE]
    assert list(coordinator.current_allocation) == [0, 8 * PAGE, 8 * PAGE]
    assert controller.allocation_retries == 1
    assert controller.allocation_unconfirmed == 1


def test_apply_lost_ack_retries_and_confirms(fast_config):
    # Node 0: delivered, ack lost, retry delivered + acked.
    cluster, controller, coordinator = _controller(fast_config)
    _script_network(
        cluster.network,
        [True, False, True, True,  # node 0: ack lost, retry confirms
         True, True],              # node 2
    )
    controller._apply(1, coordinator, _decision(8 * PAGE))
    assert cluster.dedicated_bytes(1) == [8 * PAGE] * 3
    assert list(coordinator.current_allocation) == [8 * PAGE] * 3
    assert controller.allocation_retries == 1
    assert controller.allocation_unconfirmed == 0


def test_apply_unconfirmed_exchange_diverges_belief(fast_config):
    # Node 0 applies the first copy but the coordinator never hears an
    # ack: the node holds the new size while the coordinator keeps its
    # old belief -- the discrepancy is visible until the next interval
    # re-measures.
    cluster, controller, coordinator = _controller(fast_config)
    _script_network(
        cluster.network,
        [True, False, False,  # node 0: applied, ack lost, retry lost
         True, True],         # node 2
    )
    controller._apply(1, coordinator, _decision(8 * PAGE))
    assert cluster.dedicated_bytes(1) == [8 * PAGE] * 3
    assert coordinator.current_allocation[0] == 0.0
    assert coordinator.current_allocation[2] == 8 * PAGE
    assert controller.allocation_unconfirmed == 1


def test_apply_without_change_ships_nothing(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._apply(1, coordinator, _decision(8 * PAGE))

    def explode(kind, page_size=0):  # pragma: no cover - must not run
        raise AssertionError("no exchange expected for unchanged sizes")

    cluster.network.send_control = explode
    controller._apply(1, coordinator, _decision(8 * PAGE))
    assert cluster.dedicated_bytes(1) == [8 * PAGE] * 3


# -- controller-level restart plumbing ---------------------------------


def test_controller_rebases_hit_counts_on_restart(fast_config):
    cluster, controller, coordinator = _controller(fast_config)
    controller._hit_counts[(1, 0)] = (40, 10)
    controller._hit_counts[(1, 1)] = (7, 3)
    cluster.restart_node(0)
    assert controller.restarts_observed == 1
    assert controller._hit_counts[(1, 0)] == (0, 0)
    assert controller._hit_counts[(1, 1)] == (7, 3)
    assert coordinator.restarts_seen == 1


# -- integration: total report loss still evaluates --------------------


def test_loop_survives_total_report_loss(fast_config, fast_workload):
    sim = Simulation(
        config=fast_config, workload=fast_workload, seed=0,
        faults="netloss@0:dur=100000000:p=1",
    )
    sim.run(intervals=6)
    controller = sim.controller
    assert controller.reports_dropped > 0
    # Only the coordinator's home node can deliver reports; the
    # coordinator still evaluates every interval with what it has.
    home = controller.coordinator_home[1]
    assert set(controller.coordinators[1].goal_reports) <= {home}
    assert len(controller.coordinators[1].decision_log) == 6
