"""Unit tests for the per-node buffer manager and the §6 access protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bufmgr.costs import CostObserver
from repro.bufmgr.heat import GlobalHeatRegistry
from repro.bufmgr.manager import NO_GOAL_CLASS, NodeBufferManager

PAGE = 4096


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.001
        return self.now


def make_manager(total_pages=8, policy="cost"):
    return NodeBufferManager(
        node_id=0,
        total_bytes=total_pages * PAGE,
        page_size=PAGE,
        clock=ManualClock(),
        global_heat=GlobalHeatRegistry(),
        costs=CostObserver(),
        is_last_copy=lambda page, node: False,
        policy=policy,
    )


def test_everything_starts_in_no_goal_pool():
    mgr = make_manager()
    assert mgr.no_goal_bytes() == 8 * PAGE
    assert mgr.total_dedicated_bytes() == 0


def test_miss_then_admit_lands_in_no_goal_without_dedicated():
    mgr = make_manager()
    hit, dropped = mgr.probe(1, class_id=2)
    assert not hit and dropped == []
    mgr.admit(1, class_id=2)
    assert mgr.holding_pool(1) == NO_GOAL_CLASS


def test_admit_lands_in_dedicated_pool_when_present():
    mgr = make_manager()
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    hit, _ = mgr.probe(1, class_id=2)
    assert not hit
    mgr.admit(1, class_id=2)
    assert mgr.holding_pool(1) == 2


def test_hit_in_own_dedicated_pool():
    mgr = make_manager()
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    mgr.admit(1, class_id=2)
    hit, dropped = mgr.probe(1, class_id=2)
    assert hit and dropped == []
    assert mgr.hits_by_class[2] == 1


def test_promotion_from_no_goal_pool():
    """§6: the page is acquired from the local no-goal buffer, from
    which it is removed, and inserted into the dedicated buffer."""
    mgr = make_manager()
    mgr.admit(1, class_id=2)            # no dedicated pool yet
    assert mgr.holding_pool(1) == NO_GOAL_CLASS
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    hit, dropped = mgr.probe(1, class_id=2)
    assert hit                           # no I/O needed
    assert mgr.holding_pool(1) == 2      # moved into the dedicated pool


def test_page_in_other_dedicated_pool_stays_there():
    """§6: cached in another dedicated buffer already -> hit in place."""
    mgr = make_manager()
    mgr.set_dedicated_bytes(2, 2 * PAGE)
    mgr.set_dedicated_bytes(3, 2 * PAGE)
    mgr.admit(1, class_id=2)
    hit, _ = mgr.probe(1, class_id=3)
    assert hit
    assert mgr.holding_pool(1) == 2


def test_evictions_leave_node_completely():
    """§6: replacement victims are dropped from the node's cache."""
    mgr = make_manager(total_pages=4)
    mgr.set_dedicated_bytes(2, 2 * PAGE)
    mgr.admit(1, class_id=2)
    mgr.admit(2, class_id=2)
    dropped = mgr.admit(3, class_id=2)
    assert len(dropped) == 1
    assert not mgr.contains(dropped[0])


def test_no_goal_pool_is_complement_of_dedicated():
    """Eq. 7: no-goal buffer = SIZE_i - sum of dedicated buffers."""
    mgr = make_manager(total_pages=10)
    mgr.set_dedicated_bytes(1, 3 * PAGE)
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    assert mgr.no_goal_bytes() == 3 * PAGE
    mgr.set_dedicated_bytes(1, 1 * PAGE)
    assert mgr.no_goal_bytes() == 5 * PAGE


def test_allocation_conflict_grants_partial():
    """Phase (e): allocate as much as possible, report the difference."""
    mgr = make_manager(total_pages=8)
    mgr.set_dedicated_bytes(1, 6 * PAGE)
    granted, _ = mgr.set_dedicated_bytes(2, 6 * PAGE)
    assert granted == 2 * PAGE


def test_shrinking_dedicated_pool_drops_pages():
    mgr = make_manager(total_pages=8)
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    for page in range(4):
        mgr.admit(page, class_id=2)
    granted, dropped = mgr.set_dedicated_bytes(2, 2 * PAGE)
    assert granted == 2 * PAGE
    assert len(dropped) == 2
    for page in dropped:
        assert not mgr.contains(page)


def test_dedicated_pool_to_zero_removes_pool():
    mgr = make_manager()
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    assert mgr.has_dedicated(2)
    mgr.set_dedicated_bytes(2, 0)
    assert not mgr.has_dedicated(2)
    assert mgr.no_goal_bytes() == 8 * PAGE


def test_no_goal_shrink_drops_pages_on_dedicated_growth():
    mgr = make_manager(total_pages=4)
    for page in range(4):
        mgr.admit(page, class_id=0)
    _, dropped = mgr.set_dedicated_bytes(1, 2 * PAGE)
    assert len(dropped) == 2


def test_cannot_resize_no_goal_directly():
    mgr = make_manager()
    with pytest.raises(ValueError):
        mgr.set_dedicated_bytes(NO_GOAL_CLASS, PAGE)
    with pytest.raises(ValueError):
        mgr.dedicated_bytes(NO_GOAL_CLASS)


def test_negative_allocation_rejected():
    mgr = make_manager()
    with pytest.raises(ValueError):
        mgr.set_dedicated_bytes(1, -1)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        make_manager(policy="random")


def test_hit_rate_per_class():
    mgr = make_manager()
    mgr.admit(1, class_id=0)
    mgr.probe(1, class_id=0)   # hit
    mgr.probe(2, class_id=0)   # miss
    assert mgr.hit_rate(0) == pytest.approx(0.5)
    assert mgr.hit_rate(9) == 0.0


def test_class_heat_created_on_demand():
    """§6: heat info for (class k, page p) exists only after access."""
    mgr = make_manager()
    mgr.set_dedicated_bytes(2, 4 * PAGE)
    assert not mgr.class_heat.tracked((2, 1))
    mgr.admit(1, class_id=2)
    assert mgr.class_heat.tracked((2, 1))
    assert not mgr.class_heat.tracked((3, 1))


@pytest.mark.parametrize("policy", ["cost", "lru", "lruk"])
def test_protocol_works_with_every_policy(policy):
    mgr = make_manager(total_pages=4, policy=policy)
    mgr.set_dedicated_bytes(2, 2 * PAGE)
    for page in range(6):
        hit, _ = mgr.probe(page, class_id=2)
        if not hit:
            mgr.admit(page, class_id=2)
    assert 0 < len(mgr.cached_pages()) <= 4


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),    # class id
            st.integers(min_value=0, max_value=30),   # page id
        ),
        min_size=1,
        max_size=200,
    ),
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),    # class id
            st.integers(min_value=0, max_value=8),    # pages to dedicate
        ),
        max_size=8,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_where_index_consistent(accesses, allocations):
    """The page->pool index always matches the pools' actual content,
    and total cached pages never exceed the node's frames."""
    mgr = make_manager(total_pages=8)
    allocation_steps = list(allocations)
    for step, (class_id, page_id) in enumerate(accesses):
        if allocation_steps and step % 7 == 3:
            alloc_class, pages = allocation_steps.pop()
            mgr.set_dedicated_bytes(alloc_class, pages * PAGE)
        hit, _ = mgr.probe(page_id, class_id)
        if not hit:
            mgr.admit(page_id, class_id)
        # Invariants.
        cached = mgr.cached_pages()
        assert len(cached) <= 8
        for page in cached:
            pool_id = mgr.holding_pool(page)
            assert page in mgr.pool(pool_id)
        total = sum(
            len(pool) for pool in mgr._pools.values()
        )
        assert total == len(cached)
