"""Unit tests for the write-ahead log."""

import pytest

from repro.cluster.config import DiskParameters
from repro.cluster.disk import Disk
from repro.sim.engine import Environment
from repro.txn.wal import LogRecordKind, WriteAheadLog


def make_wal():
    env = Environment()
    disk = Disk(env, DiskParameters())
    return env, disk, WriteAheadLog(env, disk, node_id=0)


def run(env, generator):
    env.process(generator)
    env.run()


def test_append_assigns_increasing_lsns():
    _, _, wal = make_wal()
    lsn1 = wal.append(1, LogRecordKind.UPDATE, page_id=5, payload="a")
    lsn2 = wal.append(1, LogRecordKind.COMMIT)
    assert lsn2 == lsn1 + 1
    assert len(wal) == 2


def test_unflushed_records_are_not_durable():
    _, _, wal = make_wal()
    wal.append(1, LogRecordKind.UPDATE, page_id=5)
    wal.append(1, LogRecordKind.COMMIT)
    assert wal.durable_records() == []
    assert wal.committed_transactions() == set()


def test_force_makes_records_durable():
    env, _, wal = make_wal()
    wal.append(1, LogRecordKind.UPDATE, page_id=5, payload="v1")
    wal.append(1, LogRecordKind.COMMIT)

    def proc():
        yield from wal.force()

    run(env, proc())
    assert wal.flushed_lsn == 2
    assert wal.committed_transactions() == {1}
    assert env.now > 0  # forcing costs simulated time


def test_force_up_to_lsn_is_partial():
    env, _, wal = make_wal()
    lsn1 = wal.append(1, LogRecordKind.UPDATE, page_id=5)
    wal.append(2, LogRecordKind.UPDATE, page_id=6)

    def proc():
        yield from wal.force(up_to_lsn=lsn1)

    run(env, proc())
    assert wal.flushed_lsn == lsn1
    assert len(wal.durable_records()) == 1


def test_force_is_idempotent():
    env, _, wal = make_wal()
    wal.append(1, LogRecordKind.COMMIT)

    def proc():
        yield from wal.force()
        before = env.now
        yield from wal.force()  # nothing new: no disk time
        assert env.now == before

    run(env, proc())
    assert wal.forces == 1


def test_sequential_write_cheaper_than_random_read():
    env = Environment()
    disk = Disk(env, DiskParameters())
    times = {}

    def proc():
        start = env.now
        yield from disk.read(4096)
        times["read"] = env.now - start
        start = env.now
        yield from disk.sequential_write(4096)
        times["write"] = env.now - start

    run(env, proc())
    assert times["write"] < times["read"]


def test_replay_updates_applies_committed_only():
    env, _, wal = make_wal()
    wal.append(1, LogRecordKind.UPDATE, page_id=5, payload="committed")
    wal.append(1, LogRecordKind.COMMIT)
    wal.append(2, LogRecordKind.UPDATE, page_id=6, payload="in-flight")

    def proc():
        yield from wal.force()

    run(env, proc())
    state = wal.replay_updates()
    assert state == {5: "committed"}


def test_replay_uses_last_committed_payload():
    env, _, wal = make_wal()
    wal.append(1, LogRecordKind.UPDATE, page_id=5, payload="v1")
    wal.append(1, LogRecordKind.COMMIT)
    wal.append(2, LogRecordKind.UPDATE, page_id=5, payload="v2")
    wal.append(2, LogRecordKind.COMMIT)

    def proc():
        yield from wal.force()

    run(env, proc())
    assert wal.replay_updates() == {5: "v2"}


def test_prepared_transactions_in_doubt():
    env, _, wal = make_wal()
    wal.append(1, LogRecordKind.PREPARE)
    wal.append(2, LogRecordKind.PREPARE)
    wal.append(2, LogRecordKind.COMMIT)
    wal.append(3, LogRecordKind.PREPARE)
    wal.append(3, LogRecordKind.ABORT)

    def proc():
        yield from wal.force()

    run(env, proc())
    assert wal.prepared_transactions() == {1}
