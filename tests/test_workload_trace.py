"""Unit tests for trace recording and replay."""

import pytest

from repro.cluster.cluster import Cluster
from repro.workload.generator import WorkloadGenerator
from repro.workload.trace import TraceRecord, TraceRecorder, TraceReplayer


def test_recorder_collects_operations(fast_config, fast_workload):
    cluster = Cluster(fast_config, seed=2)
    recorder = TraceRecorder()
    generator = WorkloadGenerator(cluster, fast_workload, recorder=recorder)
    generator.start()
    cluster.env.run(until=10_000.0)
    assert recorder.records
    for rec in recorder.records:
        assert rec.time >= 0
        assert 0 <= rec.node_id < fast_config.num_nodes
        assert len(rec.pages) == 4


def test_save_and_load_roundtrip(tmp_path):
    recorder = TraceRecorder()
    recorder.record(1.5, 0, 1, (10, 20))
    recorder.record(2.5, 2, 0, (30,))
    path = tmp_path / "trace.jsonl"
    recorder.save(str(path))
    loaded = TraceRecorder.load(str(path))
    assert loaded.records == recorder.records


def test_replay_executes_same_operations(fast_config, fast_workload):
    # Record a run.
    cluster = Cluster(fast_config, seed=3)
    recorder = TraceRecorder()
    generator = WorkloadGenerator(cluster, fast_workload, recorder=recorder)
    generator.start()
    cluster.env.run(until=10_000.0)
    n_recorded = len(recorder.records)

    # Replay against a fresh cluster.
    replay_cluster = Cluster(fast_config, seed=99)

    class CountSink:
        def __init__(self):
            self.completed = 0

        def on_arrival(self, *args):
            pass

        def on_complete(self, *args):
            self.completed += 1

    sink = CountSink()
    replayer = TraceReplayer(replay_cluster, recorder.records, sink=sink)
    replayer.start()
    replay_cluster.env.run()
    assert replayer.operations_completed == n_recorded
    assert sink.completed == n_recorded


def test_replay_respects_arrival_times(fast_config):
    cluster = Cluster(fast_config, seed=0)
    records = [
        TraceRecord(time=100.0, node_id=0, class_id=0, pages=(0,)),
        TraceRecord(time=500.0, node_id=1, class_id=0, pages=(1,)),
    ]
    starts = []

    class StartSink:
        def on_arrival(self, node_id, class_id, now):
            starts.append(now)

        def on_complete(self, *args):
            pass

    replayer = TraceReplayer(cluster, records, sink=StartSink())
    replayer.start()
    cluster.env.run()
    assert starts == [pytest.approx(100.0), pytest.approx(500.0)]


def test_replay_sorts_unordered_records(fast_config):
    cluster = Cluster(fast_config, seed=0)
    records = [
        TraceRecord(time=500.0, node_id=0, class_id=0, pages=(0,)),
        TraceRecord(time=100.0, node_id=0, class_id=0, pages=(1,)),
    ]
    replayer = TraceReplayer(cluster, records)
    assert [r.time for r in replayer.records] == [100.0, 500.0]
