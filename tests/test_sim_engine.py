"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0, 7.5]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()
    result = []

    def proc():
        value = yield env.timeout(1.0, value="hello")
        result.append(value)

    env.process(proc())
    env.run()
    assert result == ["hello"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_raises():
    env = Environment()
    env.run(until=10.0)
    with pytest.raises(ValueError):
        env.run(until=5.0)


def test_events_fire_in_time_order_with_fifo_ties():
    env = Environment()
    order = []

    def proc(name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc("b", 2.0))
    env.process(proc("a", 1.0))
    env.process(proc("tie1", 3.0))
    env.process(proc("tie2", 3.0))
    env.run()
    assert order == ["a", "b", "tie1", "tie2"]


def test_process_waits_for_other_process():
    env = Environment()
    log = []

    def worker():
        yield env.timeout(4.0)
        log.append("worker done")
        return 42

    def waiter(worker_proc):
        value = yield worker_proc
        log.append(("got", value, env.now))

    proc = env.process(worker())
    env.process(waiter(proc))
    env.run()
    assert log == ["worker done", ("got", 42, 4.0)]


def test_yield_from_subgenerator_returns_value():
    env = Environment()
    result = []

    def sub():
        yield env.timeout(1.0)
        return "sub-value"

    def main():
        value = yield from sub()
        result.append(value)

    env.process(main())
    env.run()
    assert result == ["sub-value"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def opener():
        yield env.timeout(3.0)
        gate.succeed("open!")

    def waiter():
        value = yield gate
        log.append((env.now, value))

    env.process(opener())
    env.process(waiter())
    env.run()
    assert log == [(3.0, "open!")]


def test_event_cannot_trigger_twice():
    env = Environment()
    event = env.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def failer():
        yield env.timeout(1.0)
        gate.fail(RuntimeError("boom"))

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(failer())
    env.process(waiter())
    env.run()
    assert caught == ["boom"]


def test_unhandled_process_failure_propagates():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad())
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield 42

    env.process(bad())
    with pytest.raises(SimulationError):
        env.run()


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "finished"

    result = env.run(until=env.process(proc()))
    assert result == "finished"
    assert env.now == 2.0


def test_interrupt_wakes_process_early():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
            log.append("slept full")
        except Interrupt as interrupt:
            log.append(("interrupted", env.now, interrupt.cause))

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt("wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [("interrupted", 5.0, "wake up")]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_any_of_fires_on_first():
    env = Environment()
    log = []

    def proc():
        result = yield AnyOf(env, [env.timeout(5.0, "slow"),
                                   env.timeout(1.0, "fast")])
        log.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert log == [(1.0, ["fast"])]


def test_all_of_waits_for_every_event():
    env = Environment()
    log = []

    def proc():
        result = yield AllOf(env, [env.timeout(5.0, "slow"),
                                   env.timeout(1.0, "fast")])
        log.append((env.now, sorted(result.values())))

    env.process(proc())
    env.run()
    assert log == [(5.0, ["fast", "slow"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    log = []

    def proc():
        yield AllOf(env, [])
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [0.0]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_step_without_events_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_is_alive_transitions():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    proc = env.process(quick())
    assert proc.is_alive
    env.run()
    assert not proc.is_alive


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(i):
        yield env.timeout(float(i % 7) + 0.1)
        done.append(i)

    for i in range(500):
        env.process(proc(i))
    env.run()
    assert sorted(done) == list(range(500))
