"""Unit/integration tests for the §7.1 convergence protocol harness."""

import pytest

from repro.experiments.calibration import GoalRange
from repro.experiments.convergence import (
    ConvergenceSettings,
    convergence_experiment,
    measure_convergence_run,
)


@pytest.fixture
def tiny_settings(fast_config):
    return ConvergenceSettings(
        config=fast_config,
        arrival_rate_per_node=0.02,
        warmup_ms=6_000.0,
        initial_intervals=12,
        goal_changes_per_run=2,
        max_intervals_per_change=15,
        satisfied_before_change=2,
    )


@pytest.fixture
def fast_goal_range(fast_config, tiny_settings):
    from repro.experiments.calibration import calibrate_goal_range
    from repro.experiments.runner import default_workload

    workload = default_workload(
        fast_config,
        arrival_rate_per_node=tiny_settings.arrival_rate_per_node,
    )
    return calibrate_goal_range(
        workload, class_id=1, config=fast_config, seed=50,
        warmup_ms=15_000, measure_ms=25_000,
    )


def test_run_produces_one_sample_per_goal_change(
    tiny_settings, fast_goal_range
):
    samples = measure_convergence_run(
        tiny_settings, fast_goal_range, seed=50
    )
    assert len(samples) == tiny_settings.goal_changes_per_run
    for sample in samples:
        assert 1 <= sample <= tiny_settings.max_intervals_per_change


def test_runs_are_deterministic(tiny_settings, fast_goal_range):
    a = measure_convergence_run(tiny_settings, fast_goal_range, seed=51)
    b = measure_convergence_run(tiny_settings, fast_goal_range, seed=51)
    assert a == b


def test_experiment_aggregates_replications(
    tiny_settings, fast_goal_range
):
    result = convergence_experiment(
        settings=tiny_settings,
        goal_range=fast_goal_range,
        target_half_width=50.0,   # trivially satisfied: stop at min reps
        min_replications=2,
        max_replications=2,
        base_seed=60,
    )
    assert len(result.samples) == 2 * tiny_settings.goal_changes_per_run
    assert result.mean_iterations > 0
    assert result.goal_range is fast_goal_range


def test_goal_range_containment_used():
    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=4.0)
    assert goal_range.contains(3.0)
    assert not goal_range.contains(5.0)
