"""Unit + property tests for the LRU and FIFO pools and the pool ABC."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bufmgr.fifo import FifoPool
from repro.bufmgr.lru import LruPool


def test_lru_evicts_least_recently_used():
    pool = LruPool(capacity=2)
    assert pool.insert(1) == []
    assert pool.insert(2) == []
    pool.touch(1)          # 2 is now least recently used
    assert pool.insert(3) == [2]
    assert 1 in pool and 3 in pool and 2 not in pool


def test_lru_insert_of_cached_page_is_touch():
    pool = LruPool(capacity=2)
    pool.insert(1)
    pool.insert(2)
    pool.insert(1)  # refreshes 1 instead of evicting
    assert pool.insert(3) == [2]


def test_fifo_ignores_touches():
    pool = FifoPool(capacity=2)
    pool.insert(1)
    pool.insert(2)
    pool.touch(1)          # must not save page 1
    assert pool.insert(3) == [1]


def test_zero_capacity_never_stores():
    pool = LruPool(capacity=0)
    assert pool.insert(1) == [1]
    assert len(pool) == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        LruPool(capacity=-1)


def test_resize_shrink_evicts_lru_order():
    pool = LruPool(capacity=4)
    for page in (1, 2, 3, 4):
        pool.insert(page)
    pool.touch(1)
    evicted = pool.resize(2)
    assert evicted == [2, 3]
    assert set(pool.page_ids()) == {4, 1}
    assert pool.capacity == 2


def test_resize_grow_keeps_pages():
    pool = LruPool(capacity=2)
    pool.insert(1)
    pool.insert(2)
    assert pool.resize(5) == []
    assert pool.insert(3) == []


def test_remove_present_and_absent():
    pool = LruPool(capacity=2)
    pool.insert(1)
    assert pool.remove(1) is True
    assert pool.remove(1) is False
    assert len(pool) == 0


def test_hit_rate_accounting():
    pool = LruPool(capacity=2)
    assert pool.hit_rate == 0.0
    pool.record_hit()
    pool.record_hit()
    pool.record_miss()
    assert pool.hit_rate == pytest.approx(2 / 3)


def test_belady_anomaly_on_fifo():
    """The paper cites [2]: FIFO can violate 'more buffer = more hits'.

    The classic reference string 1,2,3,4,1,2,5,1,2,3,4,5 yields 9
    faults with 3 frames but 10 with 4 frames.
    """
    reference = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]

    def fault_count(frames):
        pool = FifoPool(capacity=frames)
        faults = 0
        for page in reference:
            if page in pool:
                pool.touch(page)
            else:
                faults += 1
                pool.insert(page)
        return faults

    assert fault_count(3) == 9
    assert fault_count(4) == 10


@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=0, max_value=40),
             min_size=1, max_size=300),
)
@settings(max_examples=100)
def test_property_pool_never_exceeds_capacity(capacity, pages):
    """Invariant: |pool| <= capacity at all times, for both policies."""
    for pool in (LruPool(capacity), FifoPool(capacity)):
        for page in pages:
            pool.insert(page)
            assert len(pool) <= capacity


@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=0, max_value=40),
             min_size=1, max_size=300),
)
@settings(max_examples=100)
def test_property_insert_returns_exactly_the_evicted(capacity, pages):
    """Pages leave the pool exactly via insert()'s return value."""
    pool = LruPool(capacity)
    present = set()
    for page in pages:
        evicted = pool.insert(page)
        present.add(page)
        present -= set(evicted)
        assert present == set(pool.page_ids())


@given(
    st.lists(st.integers(min_value=0, max_value=30),
             min_size=1, max_size=200),
    st.integers(min_value=0, max_value=8),
)
@settings(max_examples=100)
def test_property_resize_to_smaller_keeps_subset(pages, new_capacity):
    pool = LruPool(16)
    for page in pages:
        pool.insert(page)
    before = set(pool.page_ids())
    evicted = pool.resize(new_capacity)
    after = set(pool.page_ids())
    assert after <= before
    assert after | set(evicted) == before
    assert len(after) <= new_capacity
