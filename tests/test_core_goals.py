"""Unit tests for service level agreements and class goals."""

import pytest

from repro.core.goals import ClassGoal, ServiceLevelAgreement


def test_no_goal_class_cannot_have_goal():
    with pytest.raises(ValueError):
        ClassGoal(class_id=0, goal_ms=5.0)


def test_goal_must_be_positive():
    with pytest.raises(ValueError):
        ClassGoal(class_id=1, goal_ms=0.0)


def test_performance_index():
    goal = ClassGoal(class_id=1, goal_ms=10.0)
    assert goal.performance_index(5.0) == 0.5
    assert goal.performance_index(20.0) == 2.0


def test_satisfied_with_tolerance():
    goal = ClassGoal(class_id=1, goal_ms=10.0)
    assert goal.satisfied(10.0)
    assert goal.satisfied(10.5, tolerance_ms=1.0)
    assert not goal.satisfied(11.5, tolerance_ms=1.0)


def test_sla_from_pairs():
    sla = ServiceLevelAgreement.from_pairs([(1, 5.0), (2, 10.0)])
    assert sla.goal_of(1) == 5.0
    assert sla.goal_of(2) == 10.0
    assert sla.goal_of(0) is None
    assert sla.goal_class_ids == [1, 2]


def test_sla_set_goal_overwrites():
    sla = ServiceLevelAgreement.from_pairs([(1, 5.0)])
    sla.set_goal(1, 8.0)
    assert sla.goal_of(1) == 8.0


def test_max_performance_index():
    sla = ServiceLevelAgreement.from_pairs([(1, 10.0), (2, 20.0)])
    observed = {1: 5.0, 2: 30.0}  # indices 0.5 and 1.5
    assert sla.max_performance_index(observed) == 1.5


def test_max_performance_index_ignores_unknown_classes():
    sla = ServiceLevelAgreement.from_pairs([(1, 10.0)])
    assert sla.max_performance_index({1: 10.0, 9: 1000.0}) == 1.0


def test_max_performance_index_empty():
    sla = ServiceLevelAgreement()
    assert sla.max_performance_index({}) == 0.0
