"""Unit tests for the buffer-partitioning LP (Section 4)."""

import numpy as np
import pytest

from repro.core.hyperplane import Hyperplane
from repro.core.lp import PartitioningProblem, solve_partitioning

MB = 1024 * 1024


def make_problem(rt_goal=10.0, upper=(2 * MB, 2 * MB, 2 * MB)):
    """A 3-node instance with the theoretically expected slope signs."""
    goal_plane = Hyperplane(
        coefficients=np.array([-4.0, -4.0, -4.0]) / MB,  # -4 ms per MB
        intercept=30.0,
    )
    nogoal_plane = Hyperplane(
        coefficients=np.array([2.0, 3.0, 4.0]) / MB,
        intercept=2.0,
    )
    return PartitioningProblem(
        goal_plane=goal_plane,
        nogoal_plane=nogoal_plane,
        rt_goal=rt_goal,
        upper_bounds=np.array(upper, dtype=float),
    )


def test_solution_meets_goal_exactly():
    problem = make_problem(rt_goal=10.0)
    solution = solve_partitioning(problem)
    assert not solution.relaxed
    assert solution.predicted_goal_rt == pytest.approx(10.0, rel=1e-6)


def test_solution_respects_bounds():
    problem = make_problem(rt_goal=10.0)
    solution = solve_partitioning(problem)
    assert np.all(solution.allocation >= -1e-6)
    assert np.all(solution.allocation <= problem.upper_bounds + 1e-6)


def test_objective_prefers_cheap_nodes():
    """Node 0 hurts the no-goal class least (2 ms/MB) -> fill it first."""
    problem = make_problem(rt_goal=10.0)
    solution = solve_partitioning(problem)
    # 5 MB total needed ((30-10)/4); node 0 and 1 full, rest on node 2.
    assert solution.allocation[0] == pytest.approx(2 * MB, rel=1e-6)
    assert solution.allocation[1] == pytest.approx(2 * MB, rel=1e-6)
    assert solution.allocation[2] == pytest.approx(1 * MB, rel=1e-6)


def test_goal_unreachable_relaxes_to_closest():
    """Goal below what even full dedication achieves -> clamp at max."""
    problem = make_problem(rt_goal=1.0)  # full memory gives 30-24=6 ms
    solution = solve_partitioning(problem)
    assert solution.relaxed
    assert solution.allocation == pytest.approx(
        problem.upper_bounds, rel=1e-6
    )
    assert solution.predicted_goal_rt == pytest.approx(6.0, rel=1e-6)


def test_goal_above_zero_allocation_relaxes_to_zero():
    problem = make_problem(rt_goal=50.0)  # zero memory gives 30 ms
    solution = solve_partitioning(problem)
    assert solution.relaxed
    assert solution.allocation == pytest.approx(np.zeros(3), abs=1e-3)


def test_zero_upper_bounds_handled():
    """Other classes hold all the memory: only the empty allocation."""
    problem = make_problem(rt_goal=30.0, upper=(0.0, 0.0, 0.0))
    solution = solve_partitioning(problem)
    assert solution.allocation == pytest.approx(np.zeros(3), abs=1e-6)


def test_validation():
    with pytest.raises(ValueError):
        make_problem(rt_goal=0.0)
    with pytest.raises(ValueError):
        make_problem(upper=(MB, MB))  # wrong length
    with pytest.raises(ValueError):
        make_problem(upper=(-MB, MB, MB))


def test_predicted_nogoal_rt_reported():
    problem = make_problem(rt_goal=10.0)
    solution = solve_partitioning(problem)
    expected = problem.nogoal_plane.predict(solution.allocation)
    assert solution.predicted_nogoal_rt == pytest.approx(expected)


def test_single_node_problem():
    problem = PartitioningProblem(
        goal_plane=Hyperplane(np.array([-2.0 / MB]), 20.0),
        nogoal_plane=Hyperplane(np.array([1.0 / MB]), 1.0),
        rt_goal=10.0,
        upper_bounds=np.array([8.0 * MB]),
    )
    solution = solve_partitioning(problem)
    assert solution.allocation[0] == pytest.approx(5 * MB, rel=1e-6)
