"""Calendar-queue scheduler equivalence tests.

The calendar queue must pop entries in exactly the order the heapq
kernel would: entry tuples ``(time, priority, seq, payload)`` carry a
unique ``seq``, so the heap order is total and any correct priority
queue is *bit-identical* to it.  These tests pin that equivalence at
the queue level (randomized push/pop interleavings, simultaneous
timestamps, pushes landing in the bucket currently being drained) and
at the engine level (whole simulations run under ``scheduler="heap"``
vs. ``"calendar"`` vs. auto-migration mid-run, including the fused
timeout→resume fast path and resource grant events).
"""

import heapq
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.engine as engine
from repro.sim.calendar import CalendarQueue
from repro.sim.engine import NORMAL, URGENT, Environment
from repro.sim.resources import Resource


def _drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


# -- queue-level equivalence --------------------------------------------


def test_presorted_and_reversed_entries():
    entries = [(float(i), NORMAL, i, None) for i in range(100)]
    assert _drain(CalendarQueue(entries)) == sorted(entries)
    assert _drain(CalendarQueue(list(reversed(entries)))) == sorted(entries)


def test_simultaneous_timestamps_order_by_priority_then_seq():
    entries = []
    seq = 0
    for _ in range(50):
        for priority in (NORMAL, URGENT):
            entries.append((7.5, priority, seq, None))
            seq += 1
    random.Random(1).shuffle(entries)
    assert _drain(CalendarQueue(entries)) == sorted(entries)


@pytest.mark.parametrize("scale", [1e-6, 1.0, 1e6])
@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_interleaved_push_pop_matches_heapq(seed, scale):
    """Pops interleaved with pushes (including past-time pushes)."""
    rng = random.Random(seed)
    cal = CalendarQueue()
    heap = []
    seq = 0
    now = 0.0
    popped = []
    expected = []
    for _ in range(2_000):
        if heap and rng.random() < 0.45:
            expected.append(heapq.heappop(heap))
            popped.append(cal.pop())
            now = popped[-1][0]
        else:
            # Mostly future times; sometimes exactly "now" (the URGENT
            # wake-up pattern), sometimes clustered duplicates.
            r = rng.random()
            if r < 0.15:
                t, priority = now, URGENT
            elif r < 0.25:
                t = now + rng.choice([0.0, 1.0, 1.0]) * scale
                priority = NORMAL
            else:
                t = now + rng.expovariate(1.0) * scale
                priority = NORMAL
            entry = (t, priority, seq, None)
            seq += 1
            heapq.heappush(heap, entry)
            cal.push(entry)
    while heap:
        expected.append(heapq.heappop(heap))
        popped.append(cal.pop())
    assert popped == expected


@given(
    times=st.lists(
        st.floats(
            min_value=0.0, max_value=1e9,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1, max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_pop_order_is_total_sort(times):
    entries = [
        (t, NORMAL if i % 3 else URGENT, i, None)
        for i, t in enumerate(times)
    ]
    cal = CalendarQueue()
    for entry in entries:
        cal.push(entry)
    assert _drain(cal) == sorted(entries)


def test_pop_before_stops_at_threshold():
    """``pop_before`` is exclusive, matching the kernel's ``< until``."""
    entries = [(float(i), NORMAL, i, None) for i in range(20)]
    cal = CalendarQueue(entries)
    taken = []
    while True:
        entry = cal.pop_before(10.0)
        if entry is None:
            break
        taken.append(entry)
    assert [e[0] for e in taken] == [float(i) for i in range(10)]
    assert len(cal) == 10
    assert cal.peek() == 10.0


def test_resize_preserves_order_under_growth():
    rng = random.Random(42)
    entries = [
        (rng.uniform(0, 1e4), NORMAL, i, None) for i in range(5_000)
    ]
    cal = CalendarQueue(min_buckets=4)  # force many resizes
    for entry in entries:
        cal.push(entry)
    assert _drain(cal) == sorted(entries)


# -- engine-level equivalence -------------------------------------------


def _workload_log(scheduler, auto_threshold=None, monkeypatch=None):
    """Run a mixed workload and return its (time, actor, note) log."""
    if auto_threshold is not None:
        monkeypatch.setattr(
            engine, "CALENDAR_AUTO_THRESHOLD", auto_threshold
        )
    env = Environment(scheduler=scheduler)
    resource = Resource(env, capacity=2)
    log = []

    def worker(pid, seed):
        rng = random.Random(seed)
        for step in range(40):
            # Fused timeout→resume path.
            yield env.timeout(rng.expovariate(1.0))
            log.append((env.now, pid, step, "tick"))
            if step % 5 == 0:
                # Resource grants exercise the URGENT same-time path.
                with resource.request() as req:
                    yield req
                    yield env.timeout(rng.random())
                log.append((env.now, pid, step, "held"))
            if step % 11 == 0:
                # Simultaneous events: zero-delay timeout.
                yield env.timeout(0.0)
                log.append((env.now, pid, step, "zero"))

    for pid in range(25):
        env.process(worker(pid, seed=pid * 13 + 1))
    env.run()
    return log


def test_heap_and_calendar_backends_produce_identical_runs(monkeypatch):
    heap_log = _workload_log("heap")
    calendar_log = _workload_log("calendar")
    assert calendar_log == heap_log


def test_auto_migration_mid_run_is_bit_identical(monkeypatch):
    heap_log = _workload_log("heap")
    auto_log = _workload_log(
        "auto", auto_threshold=16, monkeypatch=monkeypatch
    )
    assert auto_log == heap_log


def test_auto_migration_switches_backend(monkeypatch):
    monkeypatch.setattr(engine, "CALENDAR_AUTO_THRESHOLD", 8)
    env = Environment(scheduler="auto")

    def sleeper():
        yield env.timeout(1.0)

    for _ in range(4):
        env.process(sleeper())
    # Below threshold: still on the heap.
    assert env.scheduler_backend == "heap"
    for _ in range(32):
        env.process(sleeper())
    # The pending-event count crossed the threshold, so the backlog
    # migrated to the calendar queue mid-stream.
    assert env.scheduler_backend == "calendar"
    env.run()
    assert env.now == 1.0


def test_run_until_time_across_backends():
    def make(scheduler):
        env = Environment(scheduler=scheduler)
        hits = []

        def proc():
            for i in range(100):
                yield env.timeout(0.5)
                hits.append((env.now, i))

        env.process(proc())
        env.run(until=20.25)
        return env.now, hits

    assert make("calendar") == make("heap")


def test_unknown_scheduler_rejected():
    with pytest.raises(ValueError):
        Environment(scheduler="fifo")
