"""Unit tests for the allocation → hit-rate → service-demand bridge."""

import pytest

from repro.analytic.bridge import (
    HitProfile,
    build_network,
    class_frames,
    hit_profile,
    predict_response,
    service_demands,
)
from repro.cluster.config import SystemConfig
from repro.experiments.runner import default_workload
from repro.workload.spec import ClassSpec


def goal_spec(config, **overrides):
    workload = default_workload(config)
    spec = next(c for c in workload.classes if c.class_id == 1)
    if overrides:
        import dataclasses

        spec = dataclasses.replace(spec, **overrides)
    return spec


def test_hit_profile_validates_probabilities():
    with pytest.raises(ValueError):
        HitProfile(local=0.9, remote=0.9, disk=0.0)
    with pytest.raises(ValueError):
        HitProfile(local=-0.5, remote=0.5, disk=1.0)
    HitProfile(local=0.2, remote=0.3, disk=0.5)  # fine


def test_uniform_hit_profile_uses_disjoint_cache_model():
    # 3 nodes x 50 frames over 200 pages: the cost policy's last-copy
    # benefit makes node caches disjoint, so 150 distinct pages are
    # cached somewhere — local 50/200, remote 100/200, disk 50/200.
    config = SystemConfig(num_nodes=3)
    spec = goal_spec(config, pages=tuple(range(200)))
    profile = hit_profile(config, spec, frames_per_node=50.0)
    assert profile.local == pytest.approx(50 / 200)
    assert profile.remote == pytest.approx(100 / 200)
    assert profile.disk == pytest.approx(50 / 200)


def test_uniform_hit_profile_caps_distinct_at_database():
    # n*b >= P: everything is cached somewhere, disk hits vanish.
    config = SystemConfig(num_nodes=3)
    spec = goal_spec(config, pages=tuple(range(120)))
    profile = hit_profile(config, spec, frames_per_node=50.0)
    assert profile.disk == pytest.approx(0.0)
    assert profile.local == pytest.approx(50 / 120)
    assert profile.remote == pytest.approx(1.0 - 50 / 120)


def test_skewed_hit_profile_is_zipf_prefix_mass():
    config = SystemConfig(num_nodes=3)
    spec = goal_spec(config, pages=tuple(range(100)), skew=1.0)
    profile = hit_profile(config, spec, frames_per_node=10.0)
    assert profile.remote == 0.0
    # The 10 hottest of 100 Zipf(1.0) pages carry well over 10% of
    # the accesses but not everything.
    assert 0.3 < profile.local < 0.9
    assert profile.disk == pytest.approx(1.0 - profile.local)


def test_class_frames_dedicated_plus_shared_split():
    config = SystemConfig()
    workload = default_workload(config)
    page = config.page_size
    allocation = {1: 100 * page}
    frames = class_frames(config, workload, allocation)
    total = config.buffer_pages_per_node
    assert frames[1] == 100.0
    # The no-goal class gets the remaining pool (same rate and op size
    # as class 1, but class 1 is dedicated so it takes no share).
    assert frames[0] == pytest.approx(total - 100)
    assert sum(frames.values()) == pytest.approx(total)


def test_class_frames_zero_allocation_splits_by_rate():
    config = SystemConfig()
    workload = default_workload(config)
    frames = class_frames(config, workload, {})
    total = config.buffer_pages_per_node
    # Equal rates and op sizes: the pool splits evenly.
    assert frames[0] == pytest.approx(frames[1])
    assert sum(frames.values()) == pytest.approx(total)


def test_service_demands_fall_as_hits_rise():
    config = SystemConfig()
    spec = goal_spec(config)
    all_disk = service_demands(
        config, spec, HitProfile(local=0.0, remote=0.0, disk=1.0)
    )
    all_local = service_demands(
        config, spec, HitProfile(local=1.0, remote=0.0, disk=0.0)
    )
    assert all_local.cpu_total < all_disk.cpu_total
    assert all_local.disk_total == 0.0
    assert all_local.network == 0.0
    assert all_disk.disk_total > 0.0
    assert all_disk.network > 0.0


def test_build_network_shapes_and_population_floor():
    config = SystemConfig()
    workload = default_workload(config)
    network, meta = build_network(config, workload)
    assert network is not None
    assert not meta["saturated"]
    # n CPUs + n disks + one shared net station.
    assert network.num_stations == 2 * config.num_nodes + 1
    assert all(p >= 8 for p in network.population)
    assert all(z > 0 for z in network.think_ms)


def test_saturated_open_system_returns_no_network():
    config = SystemConfig()
    workload = default_workload(config, arrival_rate_per_node=10.0)
    network, meta = build_network(config, workload)
    assert network is None
    assert meta["saturated"]
    prediction = predict_response(config, workload)
    assert prediction.saturated
    assert prediction.response_of(1) == float("inf")


def test_predict_response_returns_per_class_times():
    config = SystemConfig()
    workload = default_workload(config)
    prediction = predict_response(config, workload, method="exact")
    assert set(prediction.response_ms) == {0, 1}
    assert all(rt > 0 for rt in prediction.response_ms.values())
    assert prediction.method == "exact"
    assert not prediction.saturated


def test_more_memory_means_faster_goal_class():
    config = SystemConfig()
    workload = default_workload(config)
    page = config.page_size
    # The two default classes have equal rates, so the no-allocation
    # pool already splits evenly; dedicate 3/4 to tip the balance.
    baseline = predict_response(config, workload, allocation={})
    dedicated = predict_response(
        config, workload,
        allocation={1: (3 * config.buffer_pages_per_node // 4) * page},
    )
    assert dedicated.response_of(1) < baseline.response_of(1)
