"""Tests for the process-parallel replication runner.

The headline guarantee: ``--jobs N`` never changes results.  Seeds are
derived from the replicate index, results merge by index, and the
sequential stopping rule is replayed over the index-ordered prefix —
so the parallel path must be bit-identical to the serial one.
"""

import pytest

from repro.experiments.convergence import (
    ConvergenceSettings,
    convergence_experiment,
)
from repro.experiments.parallel import (
    derive_replicate_seed,
    replicate_with_stopping,
    resolve_jobs,
    run_tasks,
)


# -- primitives -------------------------------------------------------


def _square(x):
    return x * x


def _index_of(task):
    return task[0]


def test_derive_replicate_seed_matches_serial_contract():
    # The historical serial loops seeded replicate i with base + i;
    # the shared derivation must keep that contract forever.
    assert [derive_replicate_seed(100, i) for i in range(4)] == [
        100, 101, 102, 103,
    ]


def test_derive_replicate_seed_golden_values():
    # Pinned goldens: any change to the derivation silently reseeds
    # every replicated experiment in the repository.
    assert derive_replicate_seed(0, 0) == 0
    assert derive_replicate_seed(0, 9) == 9
    assert derive_replicate_seed(7, 5) == 12
    assert derive_replicate_seed(1_000_000, 3) == 1_000_003


def test_resolve_jobs_validates():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1  # auto: all cores
    with pytest.raises(ValueError):
        resolve_jobs(-1)
    with pytest.raises(ValueError):
        resolve_jobs(-32)


def test_resolve_jobs_auto_caps_at_worker_bound(monkeypatch):
    import os

    from repro.experiments import parallel

    monkeypatch.setattr(os, "cpu_count", lambda: 4096)
    assert parallel.resolve_jobs(0) == parallel.MAX_AUTO_JOBS
    monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert parallel.resolve_jobs(0) == 2


def test_resolve_jobs_auto_survives_unknown_cpu_count(monkeypatch):
    import os

    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert resolve_jobs(0) == 1


def test_resolve_jobs_explicit_values_are_not_capped():
    # Only the auto path is bounded; an explicit request is honoured.
    from repro.experiments.parallel import MAX_AUTO_JOBS

    assert resolve_jobs(MAX_AUTO_JOBS + 8) == MAX_AUTO_JOBS + 8


def test_run_tasks_serial_and_parallel_agree():
    tasks = list(range(7))
    assert run_tasks(_square, tasks, jobs=1) == [x * x for x in tasks]
    assert run_tasks(_square, tasks, jobs=3) == [x * x for x in tasks]


def test_run_tasks_preserves_input_order():
    # Workers may complete in any order; merging is by task index.
    tasks = [(i,) for i in reversed(range(6))]
    assert run_tasks(_index_of, tasks, jobs=4) == [5, 4, 3, 2, 1, 0]


def test_replicate_with_stopping_prefix_rule_matches_serial():
    # worker(i) = i; stop once the prefix contains a value >= 3.  The
    # serial loop stops after index 3; the wave-parallel path computes
    # extra replicates but must discard them and return the same prefix.
    def stop(prefix):
        return prefix[-1] >= 3

    serial = replicate_with_stopping(_noop_worker, 1, 10, stop, jobs=1)
    waved = replicate_with_stopping(_noop_worker, 1, 10, stop, jobs=4)
    assert serial == waved == [0, 1, 2, 3]


def test_replicate_with_stopping_runs_to_max_without_convergence():
    def never(prefix):
        return False

    assert replicate_with_stopping(_noop_worker, 1, 5, never, jobs=3) == [
        0, 1, 2, 3, 4,
    ]


def _noop_worker(index):
    return index


# -- end-to-end: Table 2 replication ---------------------------------


@pytest.fixture
def tiny_settings(fast_config):
    return ConvergenceSettings(
        config=fast_config,
        arrival_rate_per_node=0.02,
        warmup_ms=6_000.0,
        initial_intervals=10,
        goal_changes_per_run=2,
        max_intervals_per_change=12,
        satisfied_before_change=2,
    )


def test_convergence_jobs4_matches_jobs1(tiny_settings):
    from repro.experiments.calibration import GoalRange

    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)
    kwargs = dict(
        settings=tiny_settings,
        goal_range=goal_range,
        target_half_width=50.0,  # stop right at min_replications
        min_replications=2,
        max_replications=3,
        base_seed=60,
    )
    serial = convergence_experiment(jobs=1, **kwargs)
    parallel = convergence_experiment(jobs=4, **kwargs)
    assert parallel.samples == serial.samples
    assert parallel.mean_iterations == serial.mean_iterations
    assert parallel.half_width == serial.half_width


def test_table2_jobs4_matches_jobs1_iteration_counts(tiny_settings):
    from repro.experiments.calibration import GoalRange

    goal_range = GoalRange(class_id=1, goal_min_ms=2.0, goal_max_ms=8.0)

    def measure(jobs):
        results = []
        for skew in (0.0, 1.0):
            from dataclasses import replace

            results.append(
                convergence_experiment(
                    settings=replace(tiny_settings, skew=skew),
                    goal_range=goal_range,
                    target_half_width=50.0,
                    min_replications=2,
                    max_replications=2,
                    base_seed=100,
                    jobs=jobs,
                )
            )
        return results

    serial = measure(1)
    parallel = measure(4)
    assert [r.samples for r in parallel] == [r.samples for r in serial]
    assert [r.mean_iterations for r in parallel] == [
        r.mean_iterations for r in serial
    ]


def test_calibration_jobs2_matches_jobs1(fast_config, tiny_settings):
    from repro.experiments.calibration import calibrate_goal_range
    from repro.experiments.runner import default_workload

    workload = default_workload(
        fast_config,
        arrival_rate_per_node=tiny_settings.arrival_rate_per_node,
    )
    kwargs = dict(
        class_id=1, config=fast_config, seed=50,
        warmup_ms=8_000, measure_ms=12_000,
    )
    serial = calibrate_goal_range(workload, jobs=1, **kwargs)
    parallel = calibrate_goal_range(workload, jobs=2, **kwargs)
    assert parallel == serial


# -- end-to-end: resilience replication under faults ------------------


def test_resilience_jobs4_matches_jobs1(fast_config):
    # The fault schedule draws from dedicated seeded streams, so the
    # bit-identity guarantee must survive fault injection: replicates
    # run on worker processes yet produce the exact series, fault
    # ledger, and loop counters of the serial path.
    from repro.experiments.resilience import run_resilience

    kwargs = dict(
        seed=0, intervals=24, config=fast_config, replications=3,
        warmup_ms=6_000.0,
    )
    serial = run_resilience(jobs=1, **kwargs)
    parallel = run_resilience(jobs=4, **kwargs)
    assert len(parallel.replicates) == 3
    for a, b in zip(serial.replicates, parallel.replicates):
        assert a.seed == b.seed
        assert a.observed_rt == b.observed_rt
        assert a.satisfied == b.satisfied
        assert a.faults == b.faults
        assert a.reports_dropped == b.reports_dropped
        assert a.allocation_retries == b.allocation_retries
        assert a.total_violation_area == b.total_violation_area
