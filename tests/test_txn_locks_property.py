"""Property-based tests for the lock manager invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.txn.locks import DeadlockError, LockManager, LockMode

# A schedule step: (txn 0..3, page 0..2, exclusive?, hold time).
steps = st.lists(
    st.tuples(
        st.integers(0, 3),
        st.integers(0, 2),
        st.booleans(),
        st.floats(min_value=0.1, max_value=5.0),
    ),
    min_size=1,
    max_size=25,
)


@given(steps)
@settings(max_examples=80, deadline=None)
def test_property_no_conflicting_holders(schedule):
    """At no point may an X lock coexist with any other lock on a page,
    and every transaction terminates (commit or deadlock abort)."""
    env = Environment()
    locks = LockManager(env)
    finished = []

    by_txn = {}
    for txn_id, page, exclusive, hold in schedule:
        by_txn.setdefault(txn_id, []).append((page, exclusive, hold))

    def check_invariant():
        for page, state in locks._locks.items():
            modes = list(state.holders.values())
            if LockMode.EXCLUSIVE in modes:
                assert len(modes) == 1, (
                    f"X lock shared on page {page}: {state.holders}"
                )

    def worker(txn_id, ops):
        try:
            for page, exclusive, hold in ops:
                mode = (
                    LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
                )
                yield from locks.acquire(txn_id, page, mode)
                check_invariant()
                yield env.timeout(hold)
                check_invariant()
        except DeadlockError:
            pass
        finally:
            locks.release_all(txn_id)
            finished.append(txn_id)

    for txn_id, ops in by_txn.items():
        env.process(worker(txn_id, ops))
    env.run()
    assert sorted(finished) == sorted(by_txn)
    # Everything released: the lock table is empty.
    assert not locks._locks


@given(steps)
@settings(max_examples=50, deadline=None)
def test_property_all_grants_are_recorded(schedule):
    """A transaction that acquired a lock holds it until release_all."""
    env = Environment()
    locks = LockManager(env)

    by_txn = {}
    for txn_id, page, exclusive, hold in schedule:
        by_txn.setdefault(txn_id, []).append((page, exclusive))

    def worker(txn_id, ops):
        acquired = set()
        try:
            for page, exclusive in ops:
                mode = (
                    LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
                )
                yield from locks.acquire(txn_id, page, mode)
                acquired.add(page)
                for held_page in acquired:
                    assert locks.holds(txn_id, held_page)
                yield env.timeout(0.5)
        except DeadlockError:
            pass
        finally:
            locks.release_all(txn_id)
            for page in acquired:
                assert not locks.holds(txn_id, page)

    for txn_id, ops in by_txn.items():
        env.process(worker(txn_id, ops))
    env.run()
