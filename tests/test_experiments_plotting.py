"""Unit tests for the ASCII chart and series export helpers."""

import json

import pytest

from repro.experiments.plotting import (
    ascii_chart,
    overlay_chart,
    series_to_csv,
    series_to_json,
)


def test_ascii_chart_dimensions():
    chart = ascii_chart([1.0, 2.0, 3.0], width=20, height=5)
    lines = chart.splitlines()
    assert len(lines) == 6  # 5 rows + axis
    assert all("|" in line for line in lines[:-1])


def test_ascii_chart_extremes_on_correct_rows():
    chart = ascii_chart([0.0, 10.0], width=20, height=5)
    lines = chart.splitlines()
    assert "*" in lines[0]       # the max lands on the top row
    assert "*" in lines[4]       # the min on the bottom row
    assert lines[0].startswith("     10.00")
    assert lines[4].startswith("      0.00")


def test_ascii_chart_bins_long_series():
    chart = ascii_chart(list(range(1000)), width=40, height=5)
    body = chart.splitlines()[0]
    assert len(body) <= 12 + 40  # tick + bar + data columns


def test_ascii_chart_constant_series():
    chart = ascii_chart([5.0] * 10, width=20, height=4)
    assert "*" in chart


def test_ascii_chart_empty_series():
    assert ascii_chart([]) == "(empty series)"


def test_ascii_chart_label():
    chart = ascii_chart([1.0], label="my chart")
    assert chart.splitlines()[0] == "my chart"


def test_ascii_chart_too_small_rejected():
    with pytest.raises(ValueError):
        ascii_chart([1.0], width=2, height=2)


def test_overlay_chart_both_marks_present():
    chart = overlay_chart([1.0, 5.0, 3.0], [2.0, 2.0, 2.0], height=6)
    assert "*" in chart
    assert "o" in chart
    assert "primary" in chart


def test_overlay_chart_mark_validation():
    with pytest.raises(ValueError):
        overlay_chart([1.0], [1.0], marks="abc")


def test_series_to_csv_roundtrip(tmp_path):
    path = tmp_path / "series.csv"
    text = series_to_csv(
        ["t", "rt"], [[1, 2], [10.0, 20.0]], path=str(path)
    )
    assert text.splitlines()[0] == "t,rt"
    assert text.splitlines()[2] == "2,20.0"
    assert path.read_text() == text


def test_series_to_csv_header_mismatch():
    with pytest.raises(ValueError):
        series_to_csv(["a"], [[1], [2]])


def test_series_to_json_roundtrip(tmp_path):
    path = tmp_path / "series.json"
    text = series_to_json(
        ["t", "rt"], [[1, 2], [10.0, 20.0]], path=str(path)
    )
    data = json.loads(text)
    assert data == {"t": [1, 2], "rt": [10.0, 20.0]}
    assert json.loads(path.read_text()) == data
