"""Unit tests for the LRU-K pool."""

import itertools

from repro.bufmgr.lruk import LrukPool


def make_clock():
    counter = itertools.count(1)
    return lambda: float(next(counter))


def test_pages_with_few_references_evicted_first():
    pool = LrukPool(capacity=2, k=2, clock=make_clock())
    pool.insert(1)      # 1 reference
    pool.insert(2)      # 1 reference
    pool.touch(1)       # 1 now has 2 references
    # 2 has infinite backward K-distance -> victim.
    assert pool.insert(3) == [2]
    assert 1 in pool


def test_victim_is_max_backward_k_distance():
    pool = LrukPool(capacity=2, k=2, clock=make_clock())
    pool.insert(1)      # t=1
    pool.insert(2)      # t=2
    pool.touch(1)       # t=3 -> history 1: [1, 3]
    pool.touch(2)       # t=4 -> history 2: [2, 4]
    pool.touch(2)       # t=5 -> history 2: [4, 5]
    # K-th most recent: page 1 at t=1, page 2 at t=4 -> evict 1.
    assert pool.insert(3) == [1]


def test_lru_among_underreferenced_pages():
    pool = LrukPool(capacity=2, k=3, clock=make_clock())
    pool.insert(1)      # t=1, 1 ref
    pool.insert(2)      # t=2, 1 ref
    pool.touch(1)       # t=3 -> page 1 more recent
    assert pool.insert(3) == [2]


def test_backward_k_distance_inf_without_k_references():
    pool = LrukPool(capacity=4, k=2, clock=make_clock())
    pool.insert(1)
    assert pool.backward_k_distance(1) == float("inf")
    pool.touch(1)
    assert pool.backward_k_distance(1, now=10.0) == 9.0


def test_k_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        LrukPool(capacity=2, k=0)


def test_discard_forgets_history():
    pool = LrukPool(capacity=2, k=2, clock=make_clock())
    pool.insert(1)
    pool.remove(1)
    assert 1 not in pool
    pool.insert(1)  # re-insert starts fresh
    assert pool.backward_k_distance(1) == float("inf")


def test_k1_behaves_like_lru():
    pool = LrukPool(capacity=2, k=1, clock=make_clock())
    pool.insert(1)
    pool.insert(2)
    pool.touch(1)
    assert pool.insert(3) == [2]
