"""Unit + property tests for the Zipf sampler."""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.zipf import ZipfPagePicker, ZipfSampler


def test_theta_zero_is_uniform():
    sampler = ZipfSampler(num_items=4, theta=0.0)
    for rank in range(4):
        assert sampler.probability(rank) == pytest.approx(0.25)


def test_probabilities_sum_to_one():
    sampler = ZipfSampler(num_items=100, theta=0.8)
    total = sum(sampler.probability(r) for r in range(100))
    assert total == pytest.approx(1.0)


def test_probabilities_decrease_with_rank():
    sampler = ZipfSampler(num_items=50, theta=1.0)
    probs = [sampler.probability(r) for r in range(50)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))


def test_theta_one_ratios():
    """Classic Zipf: p(rank 0) / p(rank 1) == 2."""
    sampler = ZipfSampler(num_items=10, theta=1.0)
    assert sampler.probability(0) / sampler.probability(1) == pytest.approx(
        2.0
    )


def test_empirical_distribution_matches():
    sampler = ZipfSampler(num_items=5, theta=1.0)
    rng = random.Random(1)
    n = 50_000
    counts = Counter(sampler.sample(rng) for _ in range(n))
    for rank in range(5):
        assert counts[rank] / n == pytest.approx(
            sampler.probability(rank), abs=0.01
        )


def test_higher_skew_concentrates_mass():
    low = ZipfSampler(num_items=100, theta=0.25)
    high = ZipfSampler(num_items=100, theta=1.0)
    top10_low = sum(low.probability(r) for r in range(10))
    top10_high = sum(high.probability(r) for r in range(10))
    assert top10_high > top10_low


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ZipfSampler(num_items=0, theta=0.5)
    with pytest.raises(ValueError):
        ZipfSampler(num_items=5, theta=-0.1)
    with pytest.raises(ValueError):
        ZipfSampler(num_items=5, theta=0.5).probability(5)


def test_page_picker_maps_ranks_to_pages():
    picker = ZipfPagePicker(pages=[100, 200, 300], theta=1.0)
    rng = random.Random(0)
    draws = {picker.pick(rng) for _ in range(200)}
    assert draws <= {100, 200, 300}
    assert 100 in draws  # the hottest page must appear


@pytest.mark.parametrize("theta", [0.0, 0.5, 1.0])
def test_alias_table_matches_probability_chi_squared(theta):
    """The alias sampler's empirical law matches ``probability`` (χ²).

    100k draws over 50 ranks: the χ² statistic against the exact
    probabilities has 49 degrees of freedom, whose 99.9th percentile is
    ~85.4 — a comfortably deterministic bound with a fixed seed.
    """
    num_items = 50
    draws = 100_000
    sampler = ZipfSampler(num_items=num_items, theta=theta)
    rng = random.Random(20_260_805 + int(theta * 100))
    counts = Counter(sampler.sample(rng) for _ in range(draws))
    chi2 = sum(
        (counts[rank] - draws * sampler.probability(rank)) ** 2
        / (draws * sampler.probability(rank))
        for rank in range(num_items)
    )
    assert chi2 < 85.4


def test_alias_table_is_exact_partition():
    """Accept/alias tables preserve the probability mass exactly."""
    sampler = ZipfSampler(num_items=97, theta=0.8)
    n = sampler.num_items
    mass = [sampler._accept[i] / n for i in range(n)]
    for i in range(n):
        if sampler._alias[i] != i:
            mass[sampler._alias[i]] += (1.0 - sampler._accept[i]) / n
    for rank in range(n):
        assert mass[rank] == pytest.approx(
            sampler.probability(rank), rel=1e-9
        )


def test_single_item_always_rank_zero():
    sampler = ZipfSampler(num_items=1, theta=1.0)
    rng = random.Random(3)
    assert {sampler.sample(rng) for _ in range(50)} == {0}


@given(
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100)
def test_property_samples_in_range(num_items, theta, seed):
    sampler = ZipfSampler(num_items, theta)
    rng = random.Random(seed)
    for _ in range(20):
        assert 0 <= sampler.sample(rng) < num_items
