"""Edge-case tests across modules: kernel, simplex, LP, cluster."""

import numpy as np
import pytest

from repro.core.simplex import ITERATION_LIMIT, OPTIMAL, solve_lp
from repro.sim.engine import Environment, Interrupt
from repro.sim.resources import Resource


# -- kernel ---------------------------------------------------------------


def test_interrupt_while_waiting_for_resource():
    """An interrupted waiter must leave the queue cleanly."""
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def holder():
        with resource.request() as req:
            yield req
            yield env.timeout(10.0)
        log.append(("holder done", env.now))

    def waiter():
        request = resource.request()
        try:
            yield request
            log.append("waiter got it")
        except Interrupt:
            resource.release(request)  # cancel the queued request
            log.append(("waiter interrupted", env.now))

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt()

    env.process(holder())
    target = env.process(waiter())
    env.process(interrupter(target))
    env.run()
    assert ("waiter interrupted", 2.0) in log
    assert ("holder done", 10.0) in log
    assert resource.queue_length == 0


def test_nested_subgenerators_three_deep():
    env = Environment()
    result = []

    def level3():
        yield env.timeout(1.0)
        return 3

    def level2():
        value = yield from level3()
        yield env.timeout(1.0)
        return value + 2

    def level1():
        value = yield from level2()
        result.append(value)

    env.process(level1())
    env.run()
    assert result == [5]
    assert env.now == 2.0


def test_event_callback_after_processed_runs_immediately():
    env = Environment()
    event = env.event()
    event.succeed("early")
    env.run()
    late = []

    def late_waiter():
        value = yield event  # event long processed
        late.append(value)

    env.process(late_waiter())
    env.run()
    assert late == ["early"]


# -- simplex ---------------------------------------------------------------


def test_simplex_redundant_equalities():
    """Duplicated equality rows must not break phase 1."""
    result = solve_lp(
        c=[1.0, 1.0],
        a_eq=[[1.0, 1.0], [2.0, 2.0]],
        b_eq=[2.0, 4.0],
    )
    assert result.status == OPTIMAL
    assert result.objective == pytest.approx(2.0)


def test_simplex_equality_with_negative_rhs():
    result = solve_lp(c=[1.0], a_eq=[[-1.0]], b_eq=[-3.0])
    assert result.status == OPTIMAL
    assert result.x == pytest.approx([3.0])


def test_simplex_iteration_limit_reported():
    result = solve_lp(
        c=[-1.0, -1.0],
        a_ub=[[1.0, 1.0]],
        b_ub=[10.0],
        maxiter=0,
    )
    assert result.status == ITERATION_LIMIT


def test_simplex_single_variable_tight():
    result = solve_lp(c=[5.0], a_ub=[[1.0]], b_ub=[0.0])
    assert result.status == OPTIMAL
    assert result.x == pytest.approx([0.0])


# -- partitioning LP ---------------------------------------------------------


def test_partitioning_mixed_zero_bounds():
    from repro.core.hyperplane import Hyperplane
    from repro.core.lp import PartitioningProblem, solve_partitioning

    MB = 1024 * 1024
    problem = PartitioningProblem(
        goal_plane=Hyperplane(np.array([-4.0 / MB, -4.0 / MB]), 20.0),
        nogoal_plane=Hyperplane(np.array([1.0 / MB, 1.0 / MB]), 1.0),
        rt_goal=12.0,
        upper_bounds=np.array([0.0, 4.0 * MB]),
    )
    solution = solve_partitioning(problem)
    assert solution.allocation[0] == pytest.approx(0.0, abs=1e-6)
    assert solution.allocation[1] == pytest.approx(2.0 * MB, rel=1e-6)


# -- cluster with hash placement ------------------------------------------


def test_hash_placement_cluster_end_to_end(fast_config):
    from dataclasses import replace

    from repro.cluster.cluster import Cluster
    from repro.workload.generator import WorkloadGenerator
    from repro.workload.spec import ClassSpec, WorkloadSpec

    config = replace(fast_config, placement="hash")
    cluster = Cluster(config, seed=3)
    workload = WorkloadSpec(classes=[
        ClassSpec(class_id=0, goal_ms=None,
                  pages=tuple(range(config.num_pages)),
                  pages_per_op=2, arrival_rate_per_node=0.01),
    ])
    generator = WorkloadGenerator(cluster, workload)
    generator.start()
    cluster.env.run(until=15_000.0)
    assert generator.operations_completed > 0
    # All three disks served reads (hash spreads the homes).
    assert all(node.disk.reads > 0 for node in cluster.nodes)
