"""Integration tests: analytic prescreening wired into the sweeps.

The load-bearing guarantee is *bit-identity*: prescreening only
chooses WHICH points simulate, never how they simulate, so a
prescreened sweep's points must be byte-for-byte equal to the same
goals run through an unscreened sweep.
"""

import json
import os

import pytest

from repro.experiments import multiclass
from repro.experiments.calibration import GoalRange
from repro.experiments.figure2 import run_goal_sweep
from repro.experiments.multiclass import doubled_cache_config

GOAL_RANGE = GoalRange(1, 2.0, 8.0)


@pytest.fixture
def screened(fast_config):
    return run_goal_sweep(
        seed=3, intervals=4, config=fast_config, goal_range=GOAL_RANGE,
        warmup_ms=4000.0, prescreen=40,
    )


def test_prescreen_simulates_only_the_frontier(screened):
    report = screened.prescreen
    assert report is not None
    assert report.grid_size == 40
    assert report.frontier_size <= 4  # 10% hard cap
    assert len(screened.points) == report.frontier_size
    assert [p.goal_ms for p in screened.points] == (
        report.selected_goals()
    )


def test_prescreened_points_are_bit_identical(fast_config, screened):
    # Re-run the selected goals as an ordinary (unscreened) sweep.
    plain = run_goal_sweep(
        goals=screened.prescreen.selected_goals(), seed=3, intervals=4,
        config=fast_config, goal_range=GOAL_RANGE, warmup_ms=4000.0,
    )
    assert plain.prescreen is None
    assert len(plain.points) == len(screened.points)
    for a, b in zip(screened.points, plain.points):
        assert a.goal_ms == b.goal_ms
        assert a.seed == b.seed
        assert a.observed_rt == b.observed_rt
        assert a.dedicated_bytes == b.dedicated_bytes
        assert a.satisfied == b.satisfied
        assert a.p95_rt_ms == b.p95_rt_ms


def test_prescreen_emits_trace_record(fast_config, tmp_path):
    outdir = str(tmp_path / "telemetry")
    data = run_goal_sweep(
        seed=3, intervals=4, config=fast_config, goal_range=GOAL_RANGE,
        warmup_ms=4000.0, prescreen=40, telemetry=outdir,
    )
    merged = os.path.join(outdir, "trace.jsonl")
    assert os.path.exists(merged)
    with open(merged, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    prescreens = [r for r in records if r["kind"] == "prescreen"]
    assert len(prescreens) == 1
    record = prescreens[0]
    assert record["point"] == "sweep"
    assert record["grid"] == 40
    assert record["frontier"] == data.prescreen.frontier_size
    assert record["solves"] > 0


def test_multiclass_prescreen_respects_goal_ordering(fast_config):
    config = doubled_cache_config(fast_config)
    sweep = multiclass.run_goal_sweep(
        goal_pairs=[(3.0, 8.0), (6.0, 14.0)], config=config, seed=3,
        intervals=3, tail=2, warmup_ms=4000.0, prescreen=16,
    )
    report = sweep.prescreen
    assert report is not None
    assert report.grid_size == 16
    assert sweep.points
    for point in sweep.points:
        assert point.goal1_ms < point.goal2_ms
        assert (point.goal1_ms, point.goal2_ms) in (
            report.selected_pairs()
        )
