"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    commands = {"table1", "figure2", "table2", "multiclass",
                "overhead", "resilience", "scaling", "all", "demo",
                "chaos", "validate-analytic", "serve"}
    for command in commands:
        args = parser.parse_args(
            [command] + (["--quick"] if command == "all" else [])
        )
        assert callable(args.func)


def test_serve_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.telemetry_dir == "telemetry-out"
    assert args.port == 8799
    assert args.host == "127.0.0.1"
    assert args.once is False


def test_live_port_flag_on_streaming_commands():
    for command in ("figure2", "multiclass", "resilience", "chaos"):
        args = build_parser().parse_args([command])
        # Off by default: no service, no bus, bit-identical runs.
        assert args.live_port is None
        args = build_parser().parse_args([command, "--live-port", "0"])
        assert args.live_port == 0


def test_validate_analytic_defaults():
    args = build_parser().parse_args(["validate-analytic"])
    assert args.quick is False
    assert args.seed == 0
    assert args.tolerance == 0.10
    assert args.method == "exact"
    assert args.json is None
    assert args.jobs == 1


def test_prescreen_flag_on_goal_sweeps():
    figure2 = build_parser().parse_args(
        ["figure2", "--prescreen", "1000"]
    )
    assert figure2.prescreen == 1000
    multiclass = build_parser().parse_args(
        ["multiclass", "--prescreen", "100"]
    )
    assert multiclass.prescreen == 100
    # Off by default: an un-flagged run never consults the solver.
    assert build_parser().parse_args(["figure2"]).prescreen == 0


def test_trace_knows_prescreen_experiment():
    args = build_parser().parse_args(["trace", "prescreen"])
    assert args.experiment == "prescreen"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["trace", "nonsense"])


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_demo_defaults():
    args = build_parser().parse_args(["demo"])
    assert args.goal == 6.0
    assert args.intervals == 25


def test_table1_runs_end_to_end(capsys):
    main(["table1", "--repetitions", "2"])
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "50" in out  # largest node count row


def test_demo_runs_end_to_end(capsys):
    main(["demo", "--intervals", "3", "--goal", "8.0"])
    out = capsys.readouterr().out
    assert out.count("interval") == 3
    assert "dedicated=" in out


def test_scaling_defaults():
    args = build_parser().parse_args(["scaling"])
    assert args.seed == 7
    assert args.intervals == 50
    assert args.nodes == [3, 5]
    assert args.pages_per_op == [4, 8, 16]
    assert args.jobs == 1


def test_scaling_accepts_large_clusters_and_empty_axis():
    args = build_parser().parse_args(
        ["scaling", "--nodes", "16", "32", "64",
         "--pages-per-op", "--jobs", "2"]
    )
    assert args.nodes == [16, 32, 64]
    assert args.pages_per_op == []  # skips the complexity sweep
    assert args.jobs == 2


def test_resilience_defaults():
    args = build_parser().parse_args(["resilience"])
    assert args.seed == 0
    assert args.intervals == 90
    assert args.replications == 2
    assert args.faults is None
    assert not args.quick


def test_figure2_accepts_fault_spec():
    args = build_parser().parse_args(
        ["figure2", "--faults", "crash@5000:node=0"]
    )
    assert args.faults == "crash@5000:node=0"


def test_resilience_runs_end_to_end(capsys, tmp_path):
    csv = tmp_path / "res.csv"
    main([
        "resilience", "--quick", "--seed", "0", "--intervals", "16",
        "--replications", "1", "--csv", str(csv),
    ])
    out = capsys.readouterr().out
    assert "Resilience: recovery per injected fault" in out
    assert "all crashes reattained:" in out
    assert csv.exists()


def test_serve_once_runs_end_to_end(capsys, tmp_path):
    import json

    run = tmp_path / "run"
    run.mkdir()
    (run / "trace.jsonl").write_text(
        json.dumps({"kind": "interval", "t": 1000.0}) + "\n"
    )
    main(["serve", "--telemetry-dir", str(tmp_path), "--port", "0",
          "--once"])
    out = capsys.readouterr().out
    assert "serving 1 recorded run(s)" in out
    assert "dashboard: http://127.0.0.1:" in out


def test_resilience_rejects_malformed_fault_spec():
    with pytest.raises(ValueError):
        main([
            "resilience", "--quick", "--intervals", "16",
            "--replications", "1", "--faults", "explode@1",
        ])


def test_resilience_control_schedule(capsys):
    main([
        "resilience", "--quick", "--control", "--intervals", "40",
        "--replications", "1",
    ])
    out = capsys.readouterr().out
    assert "coordcrash" in out
    assert "partition" in out
    assert "all control faults reattained: True" in out


def test_chaos_defaults():
    args = build_parser().parse_args(["chaos"])
    assert args.seeds == 5
    assert args.seed == 0
    assert args.intervals == 40
    assert args.goal == 6.0
    assert args.json is None
    assert not args.quick


def test_chaos_runs_end_to_end(capsys, tmp_path):
    path = tmp_path / "matrix.json"
    main(["chaos", "--quick", "--seeds", "1", "--json", str(path)])
    out = capsys.readouterr().out
    assert "Chaos matrix (1 seeds, 40 intervals)" in out
    assert "all seeds passed: True" in out
    assert path.exists()
