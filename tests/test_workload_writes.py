"""Integration tests for write workloads through the generator."""

from dataclasses import replace

import pytest

from repro.cluster.cluster import Cluster
from repro.experiments.runner import Simulation
from repro.txn.manager import TransactionManager
from repro.workload.generator import WorkloadGenerator
from repro.workload.spec import ClassSpec, WorkloadSpec


def with_writes(workload, class_id, fraction):
    return WorkloadSpec(classes=[
        replace(c, write_fraction=fraction) if c.class_id == class_id
        else c
        for c in workload.classes
    ])


def test_write_fraction_validated():
    with pytest.raises(ValueError):
        ClassSpec(
            class_id=1, goal_ms=5.0, pages=(0,), write_fraction=1.5
        )


def test_generator_requires_txn_manager_for_writes(
    fast_config, fast_workload
):
    workload = with_writes(fast_workload, 1, 0.3)
    cluster = Cluster(fast_config, seed=0)
    with pytest.raises(ValueError):
        WorkloadGenerator(cluster, workload)


def test_write_workload_commits_transactions(fast_config, fast_workload):
    workload = with_writes(fast_workload, 1, 0.4)
    cluster = Cluster(fast_config, seed=1)
    manager = TransactionManager(cluster)
    generator = WorkloadGenerator(
        cluster, workload, txn_manager=manager
    )
    generator.start()
    cluster.env.run(until=20_000.0)
    assert manager.committed > 0
    # Updates reached the home logs.
    total_updates = sum(len(log) for log in manager.logs.values())
    assert total_updates > 0
    # Nothing leaks.
    assert len(manager.active) <= 6  # only in-flight operations


def test_read_only_classes_bypass_transactions(
    fast_config, fast_workload
):
    workload = with_writes(fast_workload, 1, 0.4)
    cluster = Cluster(fast_config, seed=1)
    manager = TransactionManager(cluster)
    generator = WorkloadGenerator(
        cluster, workload, txn_manager=manager
    )
    generator.start()
    cluster.env.run(until=10_000.0)
    # Class 0 has write_fraction 0: its operations never began txns,
    # so every transaction belongs to class 1's arrival count order.
    assert manager.committed + manager.aborted <= (
        generator.operations_completed
    )


def test_simulation_auto_creates_txn_manager(fast_config, fast_workload):
    workload = with_writes(fast_workload, 1, 0.2)
    sim = Simulation(config=fast_config, workload=workload, seed=2)
    assert sim.txn_manager is not None
    sim.run(intervals=3)
    assert sim.txn_manager.committed > 0


def test_simulation_without_writes_has_no_txn_manager(
    fast_config, fast_workload
):
    sim = Simulation(config=fast_config, workload=fast_workload, seed=2)
    assert sim.txn_manager is None


def test_goal_loop_works_with_writes(fast_config, fast_workload):
    """The feedback loop must keep functioning when the goal class's
    operations run as update transactions (lock waits included in RT)."""
    workload = with_writes(fast_workload, 1, 0.25)
    sim = Simulation(
        config=fast_config, workload=workload, seed=3,
        warmup_ms=6_000.0,
    )
    sim.run(intervals=20)
    series = sim.controller.series[1]
    assert len(series.observed_rt.values) > 10
    # The controller still dedicates memory in response to violations.
    assert max(series.dedicated_bytes.values) > 0
