"""Unit tests for the scaling experiment harness (fast scale)."""

import pytest

from repro.experiments.scaling import (
    _with_pages_per_op,
    run_complexity_scaling,
    run_node_scaling,
    to_text,
)
from repro.experiments.runner import default_workload


def test_with_pages_per_op_scales_arrivals(fast_config):
    workload = default_workload(fast_config, arrival_rate_per_node=0.02)
    heavier = _with_pages_per_op(workload, 16)
    spec = heavier.spec_for(1)
    assert spec.pages_per_op == 16
    # 4x the work per operation -> 1/4 the arrivals: constant load.
    assert spec.arrival_rate_per_node == pytest.approx(0.005)


def test_with_pages_per_op_keeps_goals(fast_config):
    workload = default_workload(fast_config, goal_ms=7.0)
    heavier = _with_pages_per_op(workload, 8)
    assert heavier.spec_for(1).goal_ms == 7.0
    assert heavier.spec_for(0).goal_ms is None


def test_node_scaling_runs_at_fast_scale(fast_config):
    points = run_node_scaling(
        node_counts=(2,), base_config=fast_config, intervals=12,
        seed=3,
    )
    assert len(points) == 1
    assert points[0].num_nodes == 2
    assert points[0].mean_rt_tail_ms > 0


def test_complexity_scaling_runs_at_fast_scale(fast_config):
    points = run_complexity_scaling(
        pages_per_op=(4,), base_config=fast_config, intervals=12,
        seed=3,
    )
    assert points[0].pages_per_op == 4


def test_node_scaling_jobs_identical(fast_config):
    """Worker processes must not change any reported number."""
    kwargs = dict(
        node_counts=(2, 3), base_config=fast_config, intervals=8,
        seed=3,
    )
    serial = run_node_scaling(jobs=1, **kwargs)
    parallel = run_node_scaling(jobs=2, **kwargs)
    assert serial == parallel


def test_to_text_renders_never():
    from repro.experiments.scaling import ScalingPoint

    text = to_text(
        [ScalingPoint("x", 3, 4, None, 0.0, 1.0)], "T"
    )
    assert "never" in text
    assert text.splitlines()[0] == "T"
